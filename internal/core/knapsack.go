package core

import (
	"fmt"
	"math"
)

// KnapsackOptions configures GreedyKnapsack.
type KnapsackOptions struct {
	// SeedSize is the partial-enumeration depth d: the greedy is restarted
	// from every feasible subset of size ≤ d and the best completion wins.
	// Sviridenko's analysis for plain submodular maximization uses d = 3;
	// the default here is 1 (try every single-element seed), which is
	// usually enough in practice and keeps the run polynomial of low degree.
	SeedSize int
	// DensityRule selects candidates by potential per unit cost
	// (φ′_u(S)/c(u)) instead of raw potential. Both completions are always
	// evaluated when DensityRule is false is not set explicitly... see Run:
	// the solver tries BOTH rules from every seed and keeps the best, so
	// this option only *restricts* to one rule when set.
	DensityRule *bool
}

// GreedyKnapsack approximately maximizes φ(S) = f(S) + λ·d(S) subject to a
// knapsack constraint Σ_{u∈S} cost(u) ≤ budget.
//
// The paper's conclusion asks whether Sviridenko's partial-enumeration
// greedy — which achieves 1−1/e for monotone submodular maximization under a
// knapsack — extends to max-sum diversification; that remains open. This
// implementation adapts the technique as a principled heuristic: enumerate
// all feasible seeds of size ≤ SeedSize, complete each with the Section 4
// potential greedy under both the raw-potential and potential-per-cost
// rules, and return the best feasible solution found. No approximation
// guarantee is claimed (hence "open question"), but on uniform costs it
// degenerates to exactly the paper's greedy.
func GreedyKnapsack(obj *Objective, costs []float64, budget float64, opts *KnapsackOptions) (*Solution, error) {
	n := obj.N()
	if len(costs) != n {
		return nil, fmt.Errorf("core: GreedyKnapsack: %d costs for %d elements", len(costs), n)
	}
	for i, c := range costs {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("core: GreedyKnapsack: cost[%d] = %g", i, c)
		}
	}
	if budget < 0 || math.IsNaN(budget) {
		return nil, fmt.Errorf("core: GreedyKnapsack: budget = %g", budget)
	}
	if opts == nil {
		opts = &KnapsackOptions{}
	}
	seedSize := opts.SeedSize
	if seedSize < 0 {
		return nil, fmt.Errorf("core: GreedyKnapsack: SeedSize = %d", seedSize)
	}
	if seedSize == 0 {
		seedSize = 1
	}
	rules := []bool{false, true}
	if opts.DensityRule != nil {
		rules = []bool{*opts.DensityRule}
	}

	st := obj.NewState()
	var best *Solution
	consider := func() {
		if best == nil || st.Value() > best.Value {
			best = solutionFromState(st, 0)
		}
	}
	var complete func(used float64, density bool)
	complete = func(used float64, density bool) {
		for {
			bestU, bestScore := -1, 0.0
			for u := 0; u < n; u++ {
				if st.Contains(u) || used+costs[u] > budget+1e-12 {
					continue
				}
				score := st.MarginalPotential(u)
				if density {
					if costs[u] > 0 {
						score /= costs[u]
					} else {
						score = math.Inf(1) // free elements first
					}
				}
				if bestU == -1 || score > bestScore {
					bestU, bestScore = u, score
				}
			}
			if bestU == -1 {
				return
			}
			st.Add(bestU)
			used += costs[bestU]
		}
	}

	// Seed enumeration: all feasible subsets of size ≤ seedSize (including
	// the empty seed).
	var seeds func(from, k int, used float64)
	seeds = func(from, k int, used float64) {
		for _, density := range rules {
			mark := st.Members()
			complete(used, density)
			consider()
			st.SetTo(mark)
		}
		if k == seedSize {
			return
		}
		for u := from; u < n; u++ {
			if used+costs[u] > budget+1e-12 {
				continue
			}
			st.Add(u)
			seeds(u+1, k+1, used+costs[u])
			st.Remove(u)
		}
	}
	seeds(0, 0, 0)
	if best == nil {
		st.Reset()
		best = solutionFromState(st, 0)
	}
	return best, nil
}

// ExactKnapsack enumerates all feasible subsets — the test oracle for
// GreedyKnapsack on small instances.
func ExactKnapsack(obj *Objective, costs []float64, budget float64) (*Solution, error) {
	n := obj.N()
	if len(costs) != n {
		return nil, fmt.Errorf("core: ExactKnapsack: %d costs for %d elements", len(costs), n)
	}
	st := obj.NewState()
	var bestSet []int
	bestVal := math.Inf(-1)
	var dfs func(from int, used float64)
	dfs = func(from int, used float64) {
		if v := st.Value(); v > bestVal {
			bestVal = v
			bestSet = st.Members()
		}
		for u := from; u < n; u++ {
			if used+costs[u] > budget+1e-12 {
				continue
			}
			st.Add(u)
			dfs(u+1, used+costs[u])
			st.Remove(u)
		}
	}
	dfs(0, 0)
	st.SetTo(bestSet)
	return solutionFromState(st, 0), nil
}
