package core

import (
	"math"
	"math/rand"
	"testing"

	"maxsumdiv/internal/matroid"
	"maxsumdiv/internal/metric"
	"maxsumdiv/internal/setfunc"
)

// bruteForce enumerates all p-subsets naively — the oracle for Exact.
func bruteForce(obj *Objective, p int) float64 {
	n := obj.N()
	best := math.Inf(-1)
	idx := make([]int, p)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == p {
			if v := obj.Value(idx); v > best {
				best = v
			}
			return
		}
		for u := start; u < n; u++ {
			idx[k] = u
			rec(u+1, k+1)
		}
	}
	if p == 0 {
		return 0
	}
	rec(0, 0)
	return best
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(5)
		p := rng.Intn(n + 1)
		var obj *Objective
		if trial%2 == 0 {
			obj = randInstance(t, n, rng.Float64(), rng)
		} else {
			obj = randSubmodularInstance(t, n, 4, rng.Float64(), rng)
		}
		want := bruteForce(obj, p)
		for name, opts := range map[string]*ExactOptions{
			"pruned":    nil,
			"unpruned":  {NoPrune: true},
			"parallel":  {Parallel: true},
			"par-noprn": {Parallel: true, NoPrune: true},
		} {
			got, err := Exact(obj, p, opts)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if math.Abs(got.Value-want) > 1e-9 {
				t.Fatalf("trial %d %s: Exact = %g, brute force = %g (n=%d p=%d)",
					trial, name, got.Value, want, n, p)
			}
			if len(got.Members) != p {
				t.Fatalf("trial %d %s: returned %d members, want %d", trial, name, len(got.Members), p)
			}
			if math.Abs(obj.Value(got.Members)-got.Value) > 1e-9 {
				t.Fatalf("trial %d %s: reported value disagrees with members", trial, name)
			}
		}
	}
}

func TestExactEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	obj := randInstance(t, 5, 0.2, rng)
	if _, err := Exact(obj, -1, nil); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := Exact(obj, 6, nil); err == nil {
		t.Error("p > n accepted")
	}
	s, err := Exact(obj, 0, nil)
	if err != nil || len(s.Members) != 0 || s.Value != 0 {
		t.Errorf("p=0: %v %v", s, err)
	}
	s, err = Exact(obj, 5, nil)
	if err != nil || len(s.Members) != 5 {
		t.Errorf("p=n: %v %v", s, err)
	}
}

func TestExactMatroidMatchesUniformExact(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(4)
		p := 2 + rng.Intn(3)
		obj := randInstance(t, n, rng.Float64(), rng)
		u, _ := matroid.NewUniform(n, p)
		a, err := Exact(obj, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ExactMatroid(obj, u)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Value-b.Value) > 1e-9 {
			t.Fatalf("trial %d: Exact %g vs ExactMatroid %g", trial, a.Value, b.Value)
		}
	}
}

func TestExactMatroidRespectsConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	obj := randInstance(t, 8, 0.5, rng)
	m, _ := matroid.NewPartition([]int{0, 0, 0, 0, 1, 1, 1, 1}, []int{2, 1})
	sol, err := ExactMatroid(obj, m)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Independent(sol.Members) || len(sol.Members) != m.Rank() {
		t.Fatalf("ExactMatroid returned %v", sol.Members)
	}
	bad, _ := matroid.NewUniform(3, 1)
	if _, err := ExactMatroid(obj, bad); err == nil {
		t.Error("ground mismatch accepted")
	}
	// Rank 0.
	m0, _ := matroid.NewUniform(8, 0)
	s0, err := ExactMatroid(obj, m0)
	if err != nil || len(s0.Members) != 0 {
		t.Errorf("rank 0: %v %v", s0, err)
	}
}

func TestMMR(t *testing.T) {
	rel := []float64{0.9, 0.5, 0.8, 0.1}
	simMat := [][]float64{
		{1, 0.95, 0.1, 0.2},
		{0.95, 1, 0.15, 0.1},
		{0.1, 0.15, 1, 0.3},
		{0.2, 0.1, 0.3, 1},
	}
	sim := func(u, v int) float64 { return simMat[u][v] }
	got, err := MMR(rel, sim, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("first pick %d, want the most relevant (0)", got[0])
	}
	// Element 1 is nearly identical to 0; MMR must prefer 2 next.
	if got[1] != 2 {
		t.Errorf("second pick %d, want 2 (novelty)", got[1])
	}
	if len(got) != 3 {
		t.Errorf("returned %d picks", len(got))
	}
	seen := map[int]bool{}
	for _, u := range got {
		if seen[u] {
			t.Fatal("duplicate selection")
		}
		seen[u] = true
	}

	if _, err := MMR(rel, sim, 0.5, 5); err == nil {
		t.Error("p > n accepted")
	}
	if _, err := MMR(rel, sim, -0.1, 2); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := MMR(rel, sim, 1.1, 2); err == nil {
		t.Error("lambda > 1 accepted")
	}
	if _, err := MMR(rel, nil, 0.5, 2); err == nil {
		t.Error("nil sim accepted")
	}
	empty, err := MMR(rel, sim, 0.5, 0)
	if err != nil || len(empty) != 0 {
		t.Error("p=0 should select nothing")
	}
	// λ=1 is pure relevance ranking.
	pure, _ := MMR(rel, sim, 1, 4)
	want := []int{0, 2, 1, 3}
	for i := range want {
		if pure[i] != want[i] {
			t.Fatalf("λ=1 order %v, want %v", pure, want)
		}
	}
}

func TestSimilarityFromMetric(t *testing.T) {
	d := metric.NewDense(3)
	d.SetDistance(0, 1, 1)
	d.SetDistance(0, 2, 4)
	d.SetDistance(1, 2, 3.5)
	sim := SimilarityFromMetric(d)
	if got := sim(0, 2); got != 0 {
		t.Errorf("farthest pair similarity = %g, want 0", got)
	}
	if got := sim(0, 1); math.Abs(got-3) > 1e-12 {
		t.Errorf("sim(0,1) = %g, want 3", got)
	}
	if sim(1, 1) != 4 {
		t.Errorf("self similarity should be dmax")
	}
}

// bruteForceKMatching enumerates all k-edge matchings.
func bruteForceKMatching(n, k int, weight func(u, v int) float64) float64 {
	best := math.Inf(-1)
	var rec func(used int, edges int, total float64)
	rec = func(used int, edges int, total float64) {
		if edges == k {
			if total > best {
				best = total
			}
			return
		}
		// Choose the lowest unused vertex to pair (canonical order).
		u := -1
		for i := 0; i < n; i++ {
			if used&(1<<i) == 0 {
				u = i
				break
			}
		}
		if u == -1 {
			return
		}
		// Option 1: leave u unmatched forever.
		rec(used|1<<u, edges, total)
		// Option 2: match u with any unused v.
		for v := u + 1; v < n; v++ {
			if used&(1<<v) != 0 {
				continue
			}
			rec(used|1<<u|1<<v, edges+1, total+weight(u, v))
		}
	}
	rec(0, 0, 0)
	return best
}

func TestExactKMatchingMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(5)
		k := 1 + rng.Intn(n/2)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				w[i][j] = rng.Float64() * 10
				w[j][i] = w[i][j]
			}
		}
		weight := func(u, v int) float64 { return w[u][v] }
		pairs, total, err := ExactKMatching(n, k, weight)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != k {
			t.Fatalf("returned %d pairs, want %d", len(pairs), k)
		}
		var check float64
		used := map[int]bool{}
		for _, e := range pairs {
			if used[e[0]] || used[e[1]] {
				t.Fatal("matching reuses a vertex")
			}
			used[e[0]], used[e[1]] = true, true
			check += weight(e[0], e[1])
		}
		if math.Abs(check-total) > 1e-9 {
			t.Fatalf("reported total %g but edges sum to %g", total, check)
		}
		want := bruteForceKMatching(n, k, weight)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: DP total %g, brute force %g (n=%d k=%d)", trial, total, want, n, k)
		}
	}
}

func TestExactKMatchingEdgeCases(t *testing.T) {
	w := func(u, v int) float64 { return 1 }
	if _, _, err := ExactKMatching(25, 1, w); err == nil {
		t.Error("n > 20 accepted")
	}
	if _, _, err := ExactKMatching(4, 3, w); err == nil {
		t.Error("2k > n accepted")
	}
	if _, _, err := ExactKMatching(-1, 0, w); err == nil {
		t.Error("negative n accepted")
	}
	pairs, total, err := ExactKMatching(4, 0, w)
	if err != nil || pairs != nil || total != 0 {
		t.Error("k=0 should be empty")
	}
}

func TestHRTMatchingBased(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		n := 7 + rng.Intn(4)
		obj := randInstance(t, n, 0.3+rng.Float64(), rng)
		for _, p := range []int{2, 3, 4, 5} {
			sol, err := HRTMatchingBased(obj, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(sol.Members) != p {
				t.Fatalf("p=%d: got %d members", p, len(sol.Members))
			}
			// The matching-based algorithm uses an optimal matching, so it
			// can never produce a lower reduced-dispersion opening than the
			// greedy matching of Greedy A for even p. Sanity: objective is
			// within [opt/2 - slack, opt].
			opt, _ := Exact(obj, p, nil)
			if sol.Value > opt.Value+1e-9 {
				t.Fatalf("exceeds optimum")
			}
		}
	}
	// Requires modular f.
	rngS := rand.New(rand.NewSource(5))
	sub := randSubmodularInstance(t, 6, 3, 0.5, rngS)
	if _, err := HRTMatchingBased(sub, 3); err == nil {
		t.Error("submodular f accepted")
	}
}

// The modular fast path in SwapGain must agree with the generic path.
func TestSwapGainModularFastPathAgreesWithGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	n := 9
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Float64()
	}
	mod, _ := setfunc.NewModular(w)
	d := metric.NewDense(n)
	d.Fill(func(i, j int) float64 { return 1 + rng.Float64() })
	objFast, _ := NewObjective(mod, 0.7, d)
	// Same weights via a generic (non-Modular) source: sum of two halves.
	half := make([]float64, n)
	for i := range half {
		half[i] = w[i] / 2
	}
	m1, _ := setfunc.NewModular(half)
	m2, _ := setfunc.NewModular(half)
	sum, _ := setfunc.NewSum(m1, m2)
	objSlow, _ := NewObjective(sum, 0.7, d)

	fast, slow := objFast.NewState(), objSlow.NewState()
	for _, u := range []int{0, 2, 4} {
		fast.Add(u)
		slow.Add(u)
	}
	for _, out := range []int{0, 2, 4} {
		for in := 0; in < n; in++ {
			if in == 0 || in == 2 || in == 4 {
				continue
			}
			if g1, g2 := fast.SwapGain(out, in), slow.SwapGain(out, in); math.Abs(g1-g2) > 1e-9 {
				t.Fatalf("SwapGain(%d,%d): fast %g vs generic %g", out, in, g1, g2)
			}
		}
	}
}
