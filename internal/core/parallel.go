package core

import (
	"context"

	"maxsumdiv/internal/engine"
	"maxsumdiv/internal/matroid"
	"maxsumdiv/internal/setfunc"
)

// scanner shards a State's argmax scans across an engine pool. It amortizes
// the per-worker quality evaluators across rounds: the modular fast path
// shares the state's evaluator (its Marginal is a pure weight lookup), while
// general submodular quality gives every worker beyond the first a private
// clone that the caller keeps in sync via added/removed after each state
// mutation.
//
// The scorer closures and the factories handed to the engine are built once
// per scanner and reused for every round, so a steady-state serial scan
// allocates nothing: the per-candidate loop runs over cached closures whose
// captured state (State fields, swap-scan parameters) is updated in place
// between rounds. Parallel scans additionally pay the engine's goroutine
// fan-out, nothing per candidate.
//
// The scans only read State fields (in, du, members) and the metric, so they
// are safe to run concurrently between mutations; all selection rules are
// total orders (max score, ties to the lowest index), making parallel runs
// byte-identical to serial ones whenever candidate scores are pure functions
// of the frozen state. That holds for every scan with modular quality
// (weight lookups), and for marginal scans and swap probes of this package's
// submodular evaluators (coverage marginals read integer counts, facility
// marginals read stored similarity maxima). Only a user-supplied Function
// routed through the order-sensitive generic evaluator can, in principle,
// resolve an exact floating-point tie differently under a different shard
// layout.
type scanner struct {
	st   *State
	pool *engine.Pool
	ctx  context.Context     // optional; cancels scans mid-stride (nil = never)
	evs  []setfunc.Evaluator // lazily built clones for workers ≥ 1

	// Cached per-worker scorers plus the factory closures that dispense
	// them; engine factories run on the caller's goroutine, so the lazy
	// construction needs no locking.
	potScorers []engine.Scorer
	objScorers []engine.Scorer
	potFactory func(worker int) engine.Scorer
	objFactory func(worker int) engine.Scorer

	// Swap-scan parameters, staged by bestSwap before each scan so the
	// cached swap scorers read them without per-round captures. The filter
	// is worker-aware so each scan worker can probe matroid feasibility
	// through its own scratch (see LocalSearch's per-worker Probers).
	swapMembers   []int
	swapThreshold float64
	swapFilter    func(worker, out, in int) bool
	swapScorers   []engine.PairScorer
	swapFactory   func(worker int) engine.PairScorer
}

func newScanner(st *State, pool *engine.Pool) *scanner {
	return newScannerCtx(nil, st, pool)
}

// newScannerCtx is newScanner with a cancellation context threaded into
// every engine scan, so a solve abandoned by its caller stops mid-scan
// rather than at the next round boundary. ctxErr(ctx) is the caller-side
// check after each scan.
func newScannerCtx(ctx context.Context, st *State, pool *engine.Pool) *scanner {
	sc := &scanner{st: st, pool: pool, ctx: ctx}
	sc.potFactory = sc.potentialScorer
	sc.objFactory = sc.objectiveScorer
	sc.swapFactory = sc.swapScorer
	return sc
}

// ctxErr reports the context's error; a nil context never errors.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// evaluator returns the quality evaluator for one scan worker. The engine
// contract guarantees this is called on the caller's goroutine, so the lazy
// clone construction needs no locking.
func (sc *scanner) evaluator(worker int) setfunc.Evaluator {
	if worker == 0 || sc.st.modular != nil {
		return sc.st.f
	}
	for len(sc.evs) <= worker {
		sc.evs = append(sc.evs, nil)
	}
	if sc.evs[worker] == nil {
		ev := sc.st.obj.f.NewEvaluator()
		for _, u := range sc.st.members {
			ev.Add(u)
		}
		sc.evs[worker] = ev
	}
	return sc.evs[worker]
}

// added propagates a State.Add to the realized worker clones.
func (sc *scanner) added(u int) {
	for _, ev := range sc.evs {
		if ev != nil {
			ev.Add(u)
		}
	}
}

// swapped propagates a State.Swap to the realized worker clones.
func (sc *scanner) swapped(out, in int) {
	for _, ev := range sc.evs {
		if ev != nil {
			ev.Remove(out)
			ev.Add(in)
		}
	}
}

// potentialScorer dispenses worker's cached potential scorer, building it on
// first use.
func (sc *scanner) potentialScorer(worker int) engine.Scorer {
	for len(sc.potScorers) <= worker {
		sc.potScorers = append(sc.potScorers, nil)
	}
	if sc.potScorers[worker] == nil {
		st, ev := sc.st, sc.evaluator(worker)
		sc.potScorers[worker] = func(u int) (float64, bool) {
			if st.in[u] {
				return 0, false
			}
			return potScore(ev.Marginal(u), st.obj.lambda, st.du[u]), true
		}
	}
	return sc.potScorers[worker]
}

// objectiveScorer dispenses worker's cached objective-marginal scorer.
func (sc *scanner) objectiveScorer(worker int) engine.Scorer {
	for len(sc.objScorers) <= worker {
		sc.objScorers = append(sc.objScorers, nil)
	}
	if sc.objScorers[worker] == nil {
		st, ev := sc.st, sc.evaluator(worker)
		sc.objScorers[worker] = func(u int) (float64, bool) {
			if st.in[u] {
				return 0, false
			}
			return objScore(ev.Marginal(u), st.obj.lambda, st.du[u]), true
		}
	}
	return sc.objScorers[worker]
}

// swapScorer dispenses worker's cached swap-probe scorer; the scan
// parameters live on the scanner (staged by bestSwap), not in the closure.
func (sc *scanner) swapScorer(worker int) engine.PairScorer {
	for len(sc.swapScorers) <= worker {
		sc.swapScorers = append(sc.swapScorers, nil)
	}
	if sc.swapScorers[worker] == nil {
		st, ev, w := sc.st, sc.evaluator(worker), worker
		sc.swapScorers[worker] = func(in int) (float64, int, bool) {
			if st.in[in] {
				return 0, 0, false
			}
			bestOut, bestGain := -1, sc.swapThreshold
			for _, out := range sc.swapMembers {
				g := st.swapGainWith(ev, out, in)
				if g <= bestGain {
					continue
				}
				if sc.swapFilter != nil && !sc.swapFilter(w, out, in) {
					continue
				}
				bestOut, bestGain = out, g
			}
			if bestOut == -1 {
				return 0, 0, false
			}
			return bestGain, bestOut, true
		}
	}
	return sc.swapScorers[worker]
}

// argmaxPotential returns the non-member maximizing the greedy potential
// φ′_u(S) = ½f_u(S) + λ·d_u(S) (Index = -1 when S is the whole ground set).
func (sc *scanner) argmaxPotential() engine.Best {
	return sc.pool.ArgMaxCtx(sc.ctx, sc.st.obj.N(), sc.potFactory)
}

// argmaxObjective returns the non-member maximizing the objective marginal
// φ_u(S) = f_u(S) + λ·d_u(S).
func (sc *scanner) argmaxObjective() engine.Best {
	return sc.pool.ArgMaxCtx(sc.ctx, sc.st.obj.N(), sc.objFactory)
}

// bestSwap scans every pair (out ∈ members, in ∉ S) for the maximal
// SwapGain strictly above threshold, sharding over the incoming side.
// canSwap, when non-nil, filters pairs (e.g. matroid feasibility); it
// receives the scan worker's index so filters can keep per-worker scratch.
// The result's Index is the incoming element, Aux the outgoing one; ties
// break toward the lowest incoming index, then the earliest member.
func (sc *scanner) bestSwap(members []int, threshold float64, canSwap func(worker, out, in int) bool) engine.Best {
	sc.swapMembers, sc.swapThreshold, sc.swapFilter = members, threshold, canSwap
	b := sc.pool.ArgMaxPairCtx(sc.ctx, sc.st.obj.N(), sc.swapFactory)
	sc.swapMembers, sc.swapFilter = nil, nil // drop references between rounds
	return b
}

// BestSwap scans all (out ∈ S, in ∉ S) pairs across the pool and returns
// the pair of maximal SwapGain strictly above threshold, or ok = false when
// no such pair exists. It is the parallel form of the Section 6 oblivious
// update rule's argmax; ties break deterministically (lowest incoming index,
// then earliest member), so every worker count returns the same pair.
func (s *State) BestSwap(pool *engine.Pool, threshold float64, canSwap func(out, in int) bool) (out, in int, gain float64, ok bool) {
	var filter func(worker, out, in int) bool
	if canSwap != nil {
		filter = func(_, out, in int) bool { return canSwap(out, in) }
	}
	b := newScanner(s, pool).bestSwap(s.members, threshold, filter)
	if b.Index == -1 {
		return 0, 0, 0, false
	}
	return b.Aux, b.Index, b.Value, true
}

// bestFeasibleAddition returns the non-member u maximizing the greedy
// potential among those with S + u independent (the GreedyMatroid step).
// The independence oracle is only consulted for candidates that would beat
// the worker's running best — CanAdd is by far the scan's dominant cost for
// transversal and graphic matroids. Matroid-constrained scans are one
// closure build per call (not per round): the feasibility short-circuit
// carries per-scan state, so the closures cannot be cached across rounds.
func (sc *scanner) bestFeasibleAddition(m matroid.Matroid, members []int) engine.Best {
	st := sc.st
	return sc.pool.ArgMaxCtx(sc.ctx, st.obj.N(), func(worker int) engine.Scorer {
		ev := sc.evaluator(worker)
		var pr matroid.Prober
		taken := false
		localBest := 0.0
		return func(u int) (float64, bool) {
			if st.in[u] {
				return 0, false
			}
			v := potScore(ev.Marginal(u), st.obj.lambda, st.du[u])
			// A candidate that cannot beat this shard's incumbent cannot
			// win the merged scan either; skip its feasibility check.
			if taken && v <= localBest {
				return 0, false
			}
			if !pr.CanAdd(m, members, u) {
				return 0, false
			}
			taken, localBest = true, v
			return v, true
		}
	})
}
