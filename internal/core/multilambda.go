package core

import (
	"fmt"
	"math"

	"maxsumdiv/internal/engine"
	"maxsumdiv/internal/metric"
	"maxsumdiv/internal/setfunc"
)

// LambdaTarget is one (λ, K) query a multi-λ shared solve must answer: run
// the greedy selection rule under trade-off λ to cardinality K.
type LambdaTarget struct {
	Lambda float64
	K      int
}

// MultiLambdaCapable reports whether SolveMultiTrace can answer the
// algorithm. The plain greedy and the oblivious ablation qualify: their
// entire trajectory is a sequence of single-element argmax rounds over
// (weight, d_u(S)) pairs, so runs under different λ share every round whose
// argmax coincides. The best-pair opening (AlgoGreedyImproved) does not —
// its first two picks come from a λ-dependent pair scan, so there is no
// shared prefix to fold.
func MultiLambdaCapable(algo Algo) bool {
	return algo == AlgoGreedy || algo == AlgoOblivious
}

// mlBranch is one live trajectory of a multi-λ solve: the working set shared
// by every target whose greedy run has made exactly these picks in this
// order. All fields mirror State's accumulation exactly (same operations in
// the same order), so a branch's recorded values are bit-identical to the
// solo solve of each target it carries.
type mlBranch struct {
	targets []int // indices into the targets slice, ascending
	in      []bool
	members []int
	du      []float64 // d_u(S) for every u, maintained by row folds
	sumD    float64   // d(S)
	fsum    float64   // f(S) = Σ w(member), accumulated in addition order
}

// fork clones the working set so a diverging λ group can continue on its own
// trajectory. O(n) for the membership and d_u(S) arrays.
func (b *mlBranch) fork(targets []int) *mlBranch {
	return &mlBranch{
		targets: targets,
		in:      append([]bool(nil), b.in...),
		members: append([]int(nil), b.members...),
		du:      append([]float64(nil), b.du...),
		sumD:    b.sumD,
		fsum:    b.fsum,
	}
}

// SolveMultiTrace runs one shared greedy solve that answers every (λ, K)
// target at once, returning one trace per target, index-aligned. Each trace
// is bit-identical — same picks, same floating-point accumulations — to the
// trace a solo traced solve of that target would record, because every
// branch replays State.Add's operations in the same order and scores
// candidates through the same potScore/objScore helpers as the solo
// scanners.
//
// The fold sharing is twofold. Within a round, one pass over the candidates
// loads each (weight, d_u(S)) pair once and scores it for every λ still
// growing on that branch. Across targets, λs whose argmax agrees stay on one
// branch and pay one d_u(S) row fold (AccumulateRow) for the shared pick —
// the O(n·d) dominant cost on compute-on-demand vector backends — instead of
// one per λ. Branches fork (O(n) copy) only when argmaxes diverge; when the
// metric batches row reads (metric.RowBatcher), the diverged picks of a
// round are computed in one streaming pass and the per-branch folds hit the
// warmed cache.
//
// Requirements: spec.Algo must be MultiLambdaCapable, the quality must be
// the modular weight sum (the serving layer's quality; general submodular
// evaluators are stateful in member order and cannot be forked cheaply), and
// spec.Constraint must be nil. spec.K and the objective's own λ are ignored
// — the targets govern. spec.Ctx and spec.Pool are honored as in Solve.
func SolveMultiTrace(obj *Objective, spec Spec, targets []LambdaTarget) ([]*GreedyTrace, error) {
	if err := ctxErr(spec.Ctx); err != nil {
		return nil, err
	}
	if !MultiLambdaCapable(spec.Algo) {
		return nil, fmt.Errorf("core: SolveMultiTrace: algorithm %d has λ-dependent openings; only the single-pick greedy family folds", spec.Algo)
	}
	if spec.Constraint != nil {
		return nil, fmt.Errorf("core: SolveMultiTrace: matroid constraints are not supported")
	}
	mod, ok := obj.f.(*setfunc.Modular)
	if !ok {
		return nil, fmt.Errorf("core: SolveMultiTrace requires modular quality (got %T)", obj.f)
	}
	for j, t := range targets {
		if t.Lambda < 0 || math.IsNaN(t.Lambda) || math.IsInf(t.Lambda, 0) {
			return nil, fmt.Errorf("core: SolveMultiTrace: target %d: lambda = %g, want finite and ≥ 0", j, t.Lambda)
		}
		if err := checkP(obj, t.K); err != nil {
			return nil, err
		}
	}
	traces := make([]*GreedyTrace, len(targets))
	for j, t := range targets {
		traces[j] = &GreedyTrace{
			Order:      make([]int, 0, t.K),
			Value:      make([]float64, 0, t.K),
			FValue:     make([]float64, 0, t.K),
			Dispersion: make([]float64, 0, t.K),
		}
	}
	if len(targets) == 0 {
		return traces, nil
	}

	n := obj.N()
	rowAcc, _ := obj.d.(metric.RowAccumulator)
	batcher, _ := obj.d.(metric.RowBatcher)
	oblivious := spec.Algo == AlgoOblivious
	pool := spec.Pool
	workers := pool.Workers()

	root := &mlBranch{
		targets: make([]int, len(targets)),
		in:      make([]bool, n),
		du:      make([]float64, n),
	}
	for j := range targets {
		root.targets[j] = j
	}
	branches := []*mlBranch{root}

	// Scan scratch, sized for the widest possible round (every target
	// growing on one branch) and reused across rounds.
	bestVal := make([]float64, workers*len(targets))
	bestIdx := make([]int, workers*len(targets))
	var growing, picks []int
	var rowScratch [][]float32

	for {
		if err := ctxErr(spec.Ctx); err != nil {
			return nil, err
		}
		// Phase 1: scan every branch (reads only frozen branch state) and
		// split diverging λ groups into forked branches, collecting the
		// round's (branch, pick) adds.
		type add struct {
			br   *mlBranch
			pick int
		}
		var adds []add
		next := make([]*mlBranch, 0, len(branches))
		for _, br := range branches {
			growing = growing[:0]
			for _, ti := range br.targets {
				if targets[ti].K > len(br.members) {
					growing = append(growing, ti)
				}
			}
			if len(growing) == 0 {
				continue // every target on this branch is complete
			}
			picks = br.scan(obj, mod, pool, spec, oblivious, targets, growing, picks, bestVal, bestIdx)
			if err := ctxErr(spec.Ctx); err != nil {
				return nil, err
			}
			// Group the growing targets by their pick, preserving target
			// order; the first group keeps this branch, later groups fork.
			// (checkP guarantees an eligible candidate exists, so picks are
			// only -1 on the defensive ground-set-exhausted path: that
			// branch simply stops growing, exactly as a solo run would.)
			if picks[0] == -1 {
				continue
			}
			groupPick := make([]int, 0, len(growing))
			var forked []*mlBranch
			for gj, ti := range growing {
				pick := picks[gj]
				found := -1
				for gi, p := range groupPick {
					if p == pick {
						found = gi
						break
					}
				}
				switch {
				case found == 0:
					// Stays with the kept branch.
				case found > 0:
					forked[found-1].targets = append(forked[found-1].targets, ti)
					br.targets = removeTarget(br.targets, ti)
				case len(groupPick) == 0:
					groupPick = append(groupPick, pick)
				default:
					groupPick = append(groupPick, pick)
					nb := br.fork([]int{ti})
					br.targets = removeTarget(br.targets, ti)
					forked = append(forked, nb)
				}
			}
			adds = append(adds, add{br, groupPick[0]})
			next = append(next, br)
			for gi, nb := range forked {
				adds = append(adds, add{nb, groupPick[gi+1]})
				next = append(next, nb)
			}
		}
		branches = next
		if len(adds) == 0 {
			return traces, nil
		}

		// Phase 2: when picks diverged this round and the metric batches row
		// reads, compute all distinct rows in one streaming pass; the
		// per-branch folds below then hit the warmed cache.
		if batcher != nil && len(adds) > 1 {
			distinct := make([]int, 0, len(adds))
			for _, a := range adds {
				if !contains(distinct, a.pick) {
					distinct = append(distinct, a.pick)
				}
			}
			if len(distinct) > 1 {
				rowScratch = batcher.Rows(distinct, rowScratch)
			}
		}

		// Phase 3: apply each add in State.Add's exact operation order and
		// record the new prefix on every growing target of the branch.
		for _, a := range adds {
			br, pick := a.br, a.pick
			br.fsum += mod.Weight(pick)
			br.in[pick] = true
			br.members = append(br.members, pick)
			br.sumD += br.du[pick]
			if rowAcc != nil {
				rowAcc.AccumulateRow(pick, 1, br.du)
			} else {
				d := obj.d
				for v := range br.du {
					br.du[v] += d.Distance(pick, v)
				}
			}
			size := len(br.members)
			for _, ti := range br.targets {
				if targets[ti].K < size {
					continue // this target finished in an earlier round
				}
				tr := traces[ti]
				tr.Order = append(tr.Order, pick)
				tr.FValue = append(tr.FValue, br.fsum)
				tr.Dispersion = append(tr.Dispersion, br.sumD)
				tr.Value = append(tr.Value, objScore(br.fsum, targets[ti].Lambda, br.sumD))
			}
		}
	}
}

// scan runs one fused argmax round for every growing λ on the branch: one
// pass over the candidates loads each (weight, d_u(S)) pair once and scores
// it under every λ. Sharding, per-shard strict-> selection, and the
// in-shard-order merge replicate engine.ArgMaxCtx's total order exactly
// (max score, ties to the lowest index), so each λ's pick is the one its
// solo scan would make. Returns one pick per growing target (-1 when no
// candidate is eligible), in scratch storage reused across rounds.
func (b *mlBranch) scan(obj *Objective, mod *setfunc.Modular, pool *engine.Pool, spec Spec, oblivious bool, targets []LambdaTarget, growing, picks []int, bestVal []float64, bestIdx []int) []int {
	nL := len(growing)
	n := obj.N()
	workers := pool.Workers()
	for i := 0; i < workers*nL; i++ {
		bestIdx[i] = -1
	}
	var done <-chan struct{}
	if spec.Ctx != nil {
		done = spec.Ctx.Done()
	}
	pool.For(n, func(worker, lo, hi int) {
		vals := bestVal[worker*nL : worker*nL+nL]
		idxs := bestIdx[worker*nL : worker*nL+nL]
		stride := 1024
		if span := hi - lo; span < stride {
			stride = span/4 + 1
		}
		for u := lo; u < hi; u++ {
			if done != nil && (u-lo)%stride == stride-1 {
				select {
				case <-done:
					return // partial shard; the caller checks ctx and discards
				default:
				}
			}
			if b.in[u] {
				continue
			}
			w := mod.Weight(u)
			du := b.du[u]
			if oblivious {
				for j := 0; j < nL; j++ {
					if s := objScore(w, targets[growing[j]].Lambda, du); idxs[j] == -1 || s > vals[j] {
						vals[j], idxs[j] = s, u
					}
				}
			} else {
				for j := 0; j < nL; j++ {
					if s := potScore(w, targets[growing[j]].Lambda, du); idxs[j] == -1 || s > vals[j] {
						vals[j], idxs[j] = s, u
					}
				}
			}
		}
	})
	picks = picks[:0]
	for j := 0; j < nL; j++ {
		best, bv := -1, 0.0
		for w := 0; w < workers; w++ {
			idx := bestIdx[w*nL+j]
			if idx == -1 {
				continue
			}
			// Strict > keeps the earlier shard (lower indices) on ties,
			// matching the engine's merge.
			if v := bestVal[w*nL+j]; best == -1 || v > bv {
				best, bv = idx, v
			}
		}
		picks = append(picks, best)
	}
	return picks
}

// removeTarget deletes one target index from a branch's ascending list,
// preserving order.
func removeTarget(ts []int, ti int) []int {
	for i, t := range ts {
		if t == ti {
			return append(ts[:i], ts[i+1:]...)
		}
	}
	return ts
}

// contains reports membership in a small int slice.
func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
