package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestGreedyKnapsackValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	obj := randInstance(t, 5, 0.2, rng)
	good := []float64{1, 1, 1, 1, 1}
	if _, err := GreedyKnapsack(obj, []float64{1}, 2, nil); err == nil {
		t.Error("short costs accepted")
	}
	if _, err := GreedyKnapsack(obj, []float64{1, 1, 1, 1, -1}, 2, nil); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := GreedyKnapsack(obj, good, -1, nil); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := GreedyKnapsack(obj, good, math.NaN(), nil); err == nil {
		t.Error("NaN budget accepted")
	}
	if _, err := GreedyKnapsack(obj, good, 2, &KnapsackOptions{SeedSize: -1}); err == nil {
		t.Error("negative seed size accepted")
	}
	// Zero budget (with positive costs) returns the empty set.
	sol, err := GreedyKnapsack(obj, good, 0, nil)
	if err != nil || len(sol.Members) != 0 {
		t.Errorf("zero budget: %v %v", sol, err)
	}
}

func TestGreedyKnapsackFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(5)
		obj := randInstance(t, n, rng.Float64(), rng)
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = 0.2 + rng.Float64()
		}
		budget := 1 + rng.Float64()*3
		for _, seed := range []int{1, 2} {
			sol, err := GreedyKnapsack(obj, costs, budget, &KnapsackOptions{SeedSize: seed})
			if err != nil {
				t.Fatal(err)
			}
			var used float64
			for _, u := range sol.Members {
				used += costs[u]
			}
			if used > budget+1e-9 {
				t.Fatalf("trial %d seed %d: budget %g exceeded: %g", trial, seed, budget, used)
			}
			if math.Abs(obj.Value(sol.Members)-sol.Value) > 1e-9 {
				t.Fatalf("trial %d: reported value inconsistent", trial)
			}
		}
	}
}

// With uniform costs and budget = p, the knapsack greedy contains the plain
// greedy completion among its candidates, so it can never do worse.
func TestGreedyKnapsackDominatesPlainGreedyOnUniformCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(5)
		p := 3 + rng.Intn(3)
		obj := randInstance(t, n, rng.Float64(), rng)
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = 1
		}
		g, err := GreedyB(obj, p)
		if err != nil {
			t.Fatal(err)
		}
		ks, err := GreedyKnapsack(obj, costs, float64(p)+1e-9, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ks.Value < g.Value-1e-9 {
			t.Fatalf("trial %d: knapsack greedy %g below plain greedy %g", trial, ks.Value, g.Value)
		}
	}
}

// Larger seeds search a superset of candidates, so the value is monotone in
// SeedSize.
func TestGreedyKnapsackSeedMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	obj := randInstance(t, 10, 0.5, rng)
	costs := make([]float64, 10)
	for i := range costs {
		costs[i] = 0.3 + rng.Float64()
	}
	budget := 2.0
	prev := -1.0
	for seed := 1; seed <= 3; seed++ {
		sol, err := GreedyKnapsack(obj, costs, budget, &KnapsackOptions{SeedSize: seed})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Value < prev-1e-9 {
			t.Fatalf("seed %d: value %g dropped below seed %d's %g", seed, sol.Value, seed-1, prev)
		}
		prev = sol.Value
	}
}

func TestGreedyKnapsackNearExactOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	worst := 1.0
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(3)
		obj := randInstance(t, n, 0.2+rng.Float64(), rng)
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = 0.2 + rng.Float64()
		}
		budget := 1.5 + rng.Float64()*2
		opt, err := ExactKnapsack(obj, costs, budget)
		if err != nil {
			t.Fatal(err)
		}
		heur, err := GreedyKnapsack(obj, costs, budget, &KnapsackOptions{SeedSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		if heur.Value > opt.Value+1e-9 {
			t.Fatalf("trial %d: heuristic exceeds optimum", trial)
		}
		if ratio := opt.Value / math.Max(heur.Value, 1e-12); ratio > worst {
			worst = ratio
		}
	}
	// No guarantee is claimed, but the partial-enumeration greedy should be
	// near-optimal on these small random instances; flag a regression if it
	// ever degrades past 1.5.
	if worst > 1.5 {
		t.Fatalf("knapsack heuristic degraded to ratio %g on small instances", worst)
	}
}

func TestGreedyKnapsackDensityOnlyRule(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	obj := randInstance(t, 9, 0.4, rng)
	costs := make([]float64, 9)
	for i := range costs {
		costs[i] = 0.2 + rng.Float64()
	}
	density := true
	sol, err := GreedyKnapsack(obj, costs, 2, &KnapsackOptions{DensityRule: &density})
	if err != nil {
		t.Fatal(err)
	}
	var used float64
	for _, u := range sol.Members {
		used += costs[u]
	}
	if used > 2+1e-9 {
		t.Fatal("density-only run exceeded budget")
	}
	// Free (zero-cost) elements are always taken first under the density
	// rule.
	costs[3] = 0
	sol, err = GreedyKnapsack(obj, costs, 0.5, &KnapsackOptions{DensityRule: &density})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Contains(3) {
		t.Error("zero-cost element not selected under density rule")
	}
}

func TestExactKnapsackAgainstExactCardinality(t *testing.T) {
	// With unit costs and budget p, ExactKnapsack must match Exact over
	// sizes ≤ p; since φ is monotone they agree at size exactly p.
	rng := rand.New(rand.NewSource(7))
	obj := randInstance(t, 9, 0.6, rng)
	costs := make([]float64, 9)
	for i := range costs {
		costs[i] = 1
	}
	a, err := ExactKnapsack(obj, costs, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Exact(obj, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Value-b.Value) > 1e-9 {
		t.Fatalf("ExactKnapsack %g vs Exact %g", a.Value, b.Value)
	}
	if _, err := ExactKnapsack(obj, costs[:2], 4); err == nil {
		t.Error("short costs accepted")
	}
}

// Robustness beyond metrics (the paper's conclusion cites Sydow's relaxed
// triangle inequality): on α-relaxed semimetrics with distances in
// [lo, hi] — which satisfy d(x,y)+d(y,z) ≥ (2lo/hi)·d(x,z) — the greedy's
// observed ratio stays within hi/lo of optimal on random instances.
func TestGreedyOnRelaxedSemimetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(4)
		p := 3 + rng.Intn(3)
		hi := 2.0 + rng.Float64()*6 // lo = 1 → α = 2/hi < 1 for hi > 2
		obj := relaxedInstance(t, n, 1, hi, 0.3, rng)
		g, err := GreedyB(obj, p)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Exact(obj, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		bound := hi / 1.0 // conservative 2α-style bound: hi/lo
		if g.Value < opt.Value/bound-1e-9 {
			t.Fatalf("trial %d: relaxed-metric greedy ratio %g exceeds bound %g",
				trial, opt.Value/g.Value, bound)
		}
	}
}

// relaxedInstance builds an instance whose distances live in [lo, hi]
// (a semimetric with relaxed triangle parameter α = 2lo/hi).
func relaxedInstance(t testing.TB, n int, lo, hi, lambda float64, rng *rand.Rand) *Objective {
	t.Helper()
	obj := randInstance(t, n, lambda, rng)
	// Overwrite the distances with [lo, hi] draws.
	type mutable interface{ SetDistance(i, j int, d float64) }
	m := obj.Metric().(mutable)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.SetDistance(i, j, lo+(hi-lo)*rng.Float64())
		}
	}
	return obj
}
