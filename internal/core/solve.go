package core

import (
	"context"
	"fmt"
	"time"

	"maxsumdiv/internal/engine"
	"maxsumdiv/internal/matroid"
	"maxsumdiv/internal/setfunc"
)

// Algo selects which solver Solve dispatches to. The public API's Algorithm
// and the serving layer's wire names both map onto this enum, so the
// dispatch logic lives in exactly one place.
type Algo int

const (
	// AlgoGreedy is the paper's non-oblivious greedy (Theorem 1).
	AlgoGreedy Algo = iota
	// AlgoGreedyImproved opens the greedy with the best pair (Table 3).
	AlgoGreedyImproved
	// AlgoGollapudiSharma is the Greedy A baseline (modular quality only).
	AlgoGollapudiSharma
	// AlgoOblivious is the objective-marginal greedy ablation.
	AlgoOblivious
	// AlgoLocalSearch runs the greedy then the Section 5 single-swap local
	// search (or, with Spec.Constraint, the matroid-constrained search from
	// the Section 5 best-pair basis).
	AlgoLocalSearch
	// AlgoExact is the branch-and-bound optimum (small instances only).
	AlgoExact
)

// Spec parameterizes one Solve call. The zero value runs the default greedy
// with K = 0 (an empty selection).
type Spec struct {
	// Algo picks the solver.
	Algo Algo
	// K is the cardinality target. Ignored when Constraint is set (the
	// constraint's rank governs).
	K int
	// Ctx, when non-nil, cancels the solve mid-scan; Solve returns
	// ctx.Err().
	Ctx context.Context
	// Pool shards candidate scans; nil runs serially.
	Pool *engine.Pool
	// Constraint, when non-nil, replaces the |S| ≤ K uniform matroid. Only
	// AlgoLocalSearch supports general matroids.
	Constraint matroid.Matroid
	// Init seeds AlgoLocalSearch (nil = greedy under the uniform
	// constraint, Section 5 best-pair basis under a general matroid).
	Init []int
	// MaxSwaps caps local-search swaps (0 = unlimited).
	MaxSwaps int
	// TimeBudget bounds the local search's wall clock (0 = unlimited).
	TimeBudget time.Duration
	// MinGain and RelEps are the local search's improvement thresholds.
	MinGain, RelEps float64
}

// Solve dispatches one solve over the objective according to spec. It is
// the single entry point behind the public Index.Query and the serving
// layer, so every caller shares one dispatch table, one context contract,
// and one pool-threading convention.
func Solve(obj *Objective, spec Spec) (*Solution, error) {
	if err := ctxErr(spec.Ctx); err != nil {
		return nil, err
	}
	gopts := []GreedyOption{WithPool(spec.Pool), WithContext(spec.Ctx)}
	switch spec.Algo {
	case AlgoGreedy:
		return GreedyB(obj, spec.K, gopts...)
	case AlgoGreedyImproved:
		return GreedyB(obj, spec.K, append(gopts, WithBestPairStart())...)
	case AlgoGollapudiSharma:
		return GreedyA(obj, spec.K, gopts...)
	case AlgoOblivious:
		return GreedyOblivious(obj, spec.K, gopts...)
	case AlgoLocalSearch:
		return solveLocalSearch(obj, spec)
	case AlgoExact:
		if spec.Constraint != nil {
			return ExactMatroidCtx(spec.Ctx, obj, spec.Constraint)
		}
		return Exact(obj, spec.K, &ExactOptions{
			Parallel: spec.Pool.Workers() > 1,
			Workers:  spec.Pool.Workers(),
			Ctx:      spec.Ctx,
		})
	default:
		return nil, fmt.Errorf("core: unknown algorithm %d", spec.Algo)
	}
}

// solveLocalSearch runs the Theorem 2 search: under the uniform constraint
// it polishes a greedy start (the paper's "LS" configuration); under a
// general matroid it starts from the Section 5 best-pair basis.
func solveLocalSearch(obj *Objective, spec Spec) (*Solution, error) {
	m := spec.Constraint
	lsOpts := &LSOptions{
		Init:       spec.Init,
		MinGain:    spec.MinGain,
		RelEps:     spec.RelEps,
		MaxSwaps:   spec.MaxSwaps,
		TimeBudget: spec.TimeBudget,
		Pool:       spec.Pool,
		Ctx:        spec.Ctx,
	}
	if m == nil {
		uni, err := matroid.NewUniform(obj.N(), spec.K)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if lsOpts.Init == nil {
			init, err := GreedyB(obj, spec.K, WithPool(spec.Pool), WithContext(spec.Ctx))
			if err != nil {
				return nil, err
			}
			lsOpts.Init = init.Members
		}
		m = uni
	}
	return LocalSearch(obj, m, lsOpts)
}

// RequiresModular reports whether the algorithm is only defined for the
// default modular (weight-sum) quality function.
func (a Algo) RequiresModular() bool { return a == AlgoGollapudiSharma }

// IsModular reports whether the objective's quality function is modular —
// the precondition for AlgoGollapudiSharma and for MMR.
func (o *Objective) IsModular() bool {
	_, ok := o.f.(*setfunc.Modular)
	return ok
}
