package core

import (
	"math/rand"
	"testing"
	"time"

	"maxsumdiv/internal/matroid"
	"maxsumdiv/internal/metric"
	"maxsumdiv/internal/setfunc"
)

func randMatroid(t *testing.T, n int, rng *rand.Rand) matroid.Matroid {
	t.Helper()
	switch rng.Intn(3) {
	case 0:
		k := 2 + rng.Intn(3)
		if k > n {
			k = n
		}
		u, err := matroid.NewUniform(n, k)
		if err != nil {
			t.Fatal(err)
		}
		return u
	case 1:
		parts := 2 + rng.Intn(2)
		partOf := make([]int, n)
		for i := range partOf {
			partOf[i] = rng.Intn(parts)
		}
		caps := make([]int, parts)
		for i := range caps {
			caps[i] = 1 + rng.Intn(2)
		}
		p, err := matroid.NewPartition(partOf, caps)
		if err != nil {
			t.Fatal(err)
		}
		return p
	default:
		sets := make([][]int, 2+rng.Intn(3))
		for i := range sets {
			for u := 0; u < n; u++ {
				if rng.Intn(3) == 0 {
					sets[i] = append(sets[i], u)
				}
			}
		}
		tr, err := matroid.NewTransversal(n, sets)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
}

// Theorem 2: the single-swap local optimum is a 2-approximation under any
// matroid constraint, for modular and submodular f alike.
func TestLocalSearchTwoApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 6 + rng.Intn(4)
		var obj *Objective
		if trial%2 == 0 {
			obj = randInstance(t, n, rng.Float64(), rng)
		} else {
			obj = randSubmodularInstance(t, n, 4, rng.Float64(), rng)
		}
		m := randMatroid(t, n, rng)
		if m.Rank() == 0 {
			continue
		}
		ls, err := LocalSearch(obj, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Independent(ls.Members) {
			t.Fatalf("trial %d: local search returned dependent set %v", trial, ls.Members)
		}
		opt, err := ExactMatroid(obj, m)
		if err != nil {
			t.Fatal(err)
		}
		if ls.Value < opt.Value/2-1e-9 {
			t.Fatalf("trial %d: Theorem 2 violated: LS %g < opt/2 = %g (rank %d)",
				trial, ls.Value, opt.Value/2, m.Rank())
		}
		if ls.Value > opt.Value+1e-9 {
			t.Fatalf("trial %d: LS exceeded optimum", trial)
		}
	}
}

// A local optimum admits no improving single swap, by definition.
func TestLocalSearchIsLocallyOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	obj := randInstance(t, 10, 0.4, rng)
	m, _ := matroid.NewUniform(10, 4)
	ls, err := LocalSearch(obj, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := obj.NewState()
	st.SetTo(ls.Members)
	for _, v := range ls.Members {
		for u := 0; u < 10; u++ {
			if st.Contains(u) {
				continue
			}
			if gain := st.SwapGain(v, u); gain > 1e-9 {
				t.Fatalf("swap %d→%d still improves by %g after LS", u, v, gain)
			}
		}
	}
}

func TestLocalSearchInitFromGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	obj := randInstance(t, 20, 0.2, rng)
	m, _ := matroid.NewUniform(20, 6)
	g, err := GreedyB(obj, 6)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := LocalSearch(obj, m, &LSOptions{Init: g.Members})
	if err != nil {
		t.Fatal(err)
	}
	if ls.Value < g.Value-1e-9 {
		t.Fatalf("LS from greedy (%g) worse than greedy (%g)", ls.Value, g.Value)
	}
}

func TestLocalSearchOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	obj := randInstance(t, 15, 0.4, rng)
	m, _ := matroid.NewUniform(15, 5)

	if _, err := LocalSearch(obj, nil, nil); err == nil {
		t.Error("nil matroid accepted")
	}
	bad, _ := matroid.NewUniform(3, 1)
	if _, err := LocalSearch(obj, bad, nil); err == nil {
		t.Error("ground mismatch accepted")
	}
	if _, err := LocalSearch(obj, m, &LSOptions{MinGain: -1}); err == nil {
		t.Error("negative MinGain accepted")
	}
	if _, err := LocalSearch(obj, m, &LSOptions{Init: []int{0, 1, 2, 3, 4, 5}}); err == nil {
		t.Error("dependent init accepted")
	}

	// MaxSwaps = 1 applies at most one swap.
	one, err := LocalSearch(obj, m, &LSOptions{MaxSwaps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if one.Swaps > 1 {
		t.Errorf("MaxSwaps=1 applied %d swaps", one.Swaps)
	}
	// A generous MinGain stops immediately at the initial basis.
	lazy, err := LocalSearch(obj, m, &LSOptions{MinGain: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Swaps != 0 {
		t.Errorf("MinGain=1e9 still swapped %d times", lazy.Swaps)
	}
	// Relative epsilon rule terminates and yields a valid basis.
	rel, err := LocalSearch(obj, m, &LSOptions{RelEps: 0.01})
	if err != nil || len(rel.Members) != 5 {
		t.Errorf("RelEps run: %v %v", rel, err)
	}
	// Time budget is honored (smoke: tiny budget still returns a basis).
	timed, err := LocalSearch(obj, m, &LSOptions{TimeBudget: time.Nanosecond})
	if err != nil || len(timed.Members) != 5 {
		t.Errorf("TimeBudget run: %v %v", timed, err)
	}
}

func TestLocalSearchDegenerateRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	obj := randInstance(t, 6, 0.5, rng)

	// Rank 0: empty solution.
	m0, _ := matroid.NewUniform(6, 0)
	s0, err := LocalSearch(obj, m0, nil)
	if err != nil || len(s0.Members) != 0 {
		t.Errorf("rank 0: %v %v", s0, err)
	}
	// Rank 1: the best singleton (optimal).
	m1, _ := matroid.NewUniform(6, 1)
	s1, err := LocalSearch(obj, m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt1, _ := ExactMatroid(obj, m1)
	if s1.Value < opt1.Value-1e-12 {
		t.Errorf("rank 1 not optimal: %g < %g", s1.Value, opt1.Value)
	}
	// Rank 2: paper notes the algorithm is optimal. Verify on instances
	// where the best pair IS the optimum (always true at rank 2 with the
	// Section 5 initialization plus local search).
	m2, _ := matroid.NewUniform(6, 2)
	s2, _ := LocalSearch(obj, m2, nil)
	opt2, _ := ExactMatroid(obj, m2)
	if s2.Value < opt2.Value-1e-9 {
		t.Errorf("rank 2 not optimal: %g < %g", s2.Value, opt2.Value)
	}
}

// LS must weakly improve on its initialization and match Table 2's setup
// (Greedy B then bounded local search).
func TestLocalSearchPaperLSConfiguration(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	obj := randInstance(t, 40, 0.2, rng)
	p := 8
	m, _ := matroid.NewUniform(40, p)
	g, _ := GreedyB(obj, p)
	ls, err := LocalSearch(obj, m, &LSOptions{Init: g.Members, TimeBudget: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if ls.Value < g.Value-1e-9 {
		t.Fatalf("LS regressed below its greedy init")
	}
	if len(ls.Members) != p {
		t.Fatalf("LS returned %d members, want %d", len(ls.Members), p)
	}
}

func TestBestIndependentPairRespectsMatroid(t *testing.T) {
	// Force the globally best pair to be dependent; LS init must pick the
	// best independent one instead.
	mod, _ := setfunc.NewModular([]float64{10, 10, 1, 1})
	d := metric.NewDense(4)
	d.Fill(func(i, j int) float64 { return 1 })
	obj, _ := NewObjective(mod, 1, d)
	// Elements 0,1 share a cap-1 part: pair {0,1} dependent.
	m, _ := matroid.NewPartition([]int{0, 0, 1, 2}, []int{1, 1, 1})
	x, y, err := bestIndependentPair(nil, obj, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if x == 0 && y == 1 {
		t.Fatal("chose a dependent pair")
	}
	// Best independent pair should include exactly one of {0,1}.
	if (x == 0 || x == 1) == (y == 0 || y == 1) {
		t.Errorf("unexpected pair (%d,%d)", x, y)
	}
}
