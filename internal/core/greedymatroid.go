package core

import (
	"fmt"

	"maxsumdiv/internal/matroid"
)

// GreedyMatroid runs the Section 4 potential greedy under a matroid
// constraint: repeatedly add the feasible element maximizing
// φ′_u(S) = ½f_u(S) + λd_u(S) until S is a basis.
//
// The paper's Appendix proves this algorithm has UNBOUNDED approximation
// ratio for general matroids (even with modular f): on the two-block
// partition instance it greedily locks in the high-weight element a and can
// never reach the optimum that uses b instead. It is provided (a) to
// reproduce that negative result and (b) as a fast heuristic initializer for
// LocalSearch, which restores the 2-approximation (Theorem 2).
func GreedyMatroid(obj *Objective, m matroid.Matroid, opts ...GreedyOption) (*Solution, error) {
	if m == nil {
		return nil, fmt.Errorf("core: nil matroid")
	}
	if m.GroundSize() != obj.N() {
		return nil, fmt.Errorf("core: matroid ground size %d, objective has %d", m.GroundSize(), obj.N())
	}
	var cfg greedyCfg
	for _, o := range opts {
		o(&cfg)
	}
	st := obj.NewState()
	members := []int{}
	if cfg.bestPairStart && m.Rank() >= 2 {
		x, y, err := bestIndependentPair(cfg.ctx, obj, m, cfg.pool)
		if err == nil {
			st.Add(x)
			st.Add(y)
			members = append(members, x, y)
		}
	}
	sc := newScannerCtx(cfg.ctx, st, cfg.pool)
	for st.Size() < m.Rank() {
		b := sc.bestFeasibleAddition(m, members)
		if err := ctxErr(cfg.ctx); err != nil {
			return nil, err
		}
		if b.Index == -1 {
			break // no feasible extension (shouldn't happen below rank)
		}
		st.Add(b.Index)
		sc.added(b.Index)
		members = append(members, b.Index)
	}
	return solutionFromState(st, 0), nil
}
