package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"maxsumdiv/internal/matroid"
)

// quickInstance bundles a generated objective with a seed for downstream
// randomness.
type quickInstance struct {
	obj  *Objective
	p    int
	seed int64
}

func quickInstanceGen(submodular bool) func(args []reflect.Value, rng *rand.Rand) {
	return func(args []reflect.Value, rng *rand.Rand) {
		n := 5 + rng.Intn(6)
		p := 1 + rng.Intn(4)
		if p > n {
			p = n
		}
		var obj *Objective
		if submodular {
			obj = randSubmodularInstance(quickT{}, n, 4, rng.Float64(), rng)
		} else {
			obj = randInstance(quickT{}, n, rng.Float64(), rng)
		}
		args[0] = reflect.ValueOf(quickInstance{obj: obj, p: p, seed: rng.Int63()})
	}
}

// quickT satisfies the minimal testing.TB surface randInstance needs; the
// generators never fail on valid inputs.
type quickT struct{ testing.TB }

func (quickT) Helper()                   {}
func (quickT) Fatal(args ...interface{}) { panic(args) }
func (quickT) Fatalf(f string, a ...any) { panic(f) }

// quick.Check property (Theorem 1): greedy ≥ OPT/2 on arbitrary random
// instances, modular and submodular alike.
func TestQuickGreedyTwoApproximation(t *testing.T) {
	for _, submodular := range []bool{false, true} {
		cfg := &quick.Config{MaxCount: 40, Values: quickInstanceGen(submodular)}
		property := func(in quickInstance) bool {
			g, err := GreedyB(in.obj, in.p)
			if err != nil {
				return false
			}
			opt, err := Exact(in.obj, in.p, nil)
			if err != nil {
				return false
			}
			return g.Value >= opt.Value/2-1e-9 && g.Value <= opt.Value+1e-9
		}
		if err := quick.Check(property, cfg); err != nil {
			t.Errorf("submodular=%v: %v", submodular, err)
		}
	}
}

// quick.Check property (Theorem 2): local search ≥ OPT/2 under random
// partition matroids.
func TestQuickLocalSearchTwoApproximation(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Values: quickInstanceGen(true)}
	property := func(in quickInstance) bool {
		rng := rand.New(rand.NewSource(in.seed))
		n := in.obj.N()
		parts := 2 + rng.Intn(2)
		partOf := make([]int, n)
		for i := range partOf {
			partOf[i] = rng.Intn(parts)
		}
		caps := make([]int, parts)
		for i := range caps {
			caps[i] = 1 + rng.Intn(2)
		}
		m, err := matroid.NewPartition(partOf, caps)
		if err != nil || m.Rank() == 0 {
			return true
		}
		ls, err := LocalSearch(in.obj, m, nil)
		if err != nil {
			return false
		}
		opt, err := ExactMatroid(in.obj, m)
		if err != nil {
			return false
		}
		return ls.Value >= opt.Value/2-1e-9 && m.Independent(ls.Members)
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// quick.Check property: the incremental state value equals naive
// recomputation after any random mutation trace.
func TestQuickStateConsistency(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Values: quickInstanceGen(false)}
	property := func(in quickInstance) bool {
		rng := rand.New(rand.NewSource(in.seed))
		st := in.obj.NewState()
		n := in.obj.N()
		for step := 0; step < 40; step++ {
			u := rng.Intn(n)
			if st.Contains(u) {
				st.Remove(u)
			} else {
				st.Add(u)
			}
			want := in.obj.Value(st.Members())
			got := st.Value()
			if got-want > 1e-9 || want-got > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// quick.Check property: the exact solver's value is reachable by its
// reported member set, and pruning never changes the optimum.
func TestQuickExactPruningSound(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Values: quickInstanceGen(true)}
	property := func(in quickInstance) bool {
		pruned, err := Exact(in.obj, in.p, nil)
		if err != nil {
			return false
		}
		unpruned, err := Exact(in.obj, in.p, &ExactOptions{NoPrune: true})
		if err != nil {
			return false
		}
		diff := pruned.Value - unpruned.Value
		if diff > 1e-9 || diff < -1e-9 {
			return false
		}
		recomputed := in.obj.Value(pruned.Members)
		return recomputed-pruned.Value < 1e-9 && pruned.Value-recomputed < 1e-9
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// quick.Check property: greedy solutions are deterministic functions of the
// instance (tie-breaking by index).
func TestQuickGreedyDeterminism(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Values: quickInstanceGen(false)}
	property := func(in quickInstance) bool {
		a, err := GreedyB(in.obj, in.p)
		if err != nil {
			return false
		}
		b, err := GreedyB(in.obj, in.p)
		if err != nil {
			return false
		}
		if len(a.Members) != len(b.Members) {
			return false
		}
		for i := range a.Members {
			if a.Members[i] != b.Members[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}
