package core

import (
	"fmt"
	"sort"
)

// GreedyTrace records one greedy run's addition order and per-prefix
// objective values. The greedy family's selection rule is independent of the
// cardinality target — every round maximizes the same marginal over the same
// working set, ties broken toward the lowest index — so the k-prefix of a
// run to K ≥ k is the same additions in the same order, with the same
// floating-point accumulation, as a solo run to k. That prefix nesting is
// what lets the serving layer's batching dispatcher answer many coalesced
// queries of different cardinalities from one solve.
//
// The best-pair opening (AlgoGreedyImproved) is the exception: its first two
// picks come from a pair scan, so prefixes only match solo runs for k ≥ 2.
// PrefixNested encodes that rule for dispatch layers.
type GreedyTrace struct {
	// Order is the addition order (ground-set indices, unsorted).
	Order []int
	// Value[i], FValue[i], Dispersion[i] are φ(S), f(S), d(S) after the
	// first i+1 additions.
	Value, FValue, Dispersion []float64
}

// record captures the working set right after adding u. Nil traces record
// nothing, so the solvers call it unconditionally at zero cost to untraced
// runs beyond a pointer test.
func (t *GreedyTrace) record(st *State, u int) {
	if t == nil {
		return
	}
	t.Order = append(t.Order, u)
	t.Value = append(t.Value, st.Value())
	t.FValue = append(t.FValue, st.FValue())
	t.Dispersion = append(t.Dispersion, st.Dispersion())
}

// Len returns how many additions the trace recorded — the solve's target, or
// less when the ground set ran out first.
func (t *GreedyTrace) Len() int { return len(t.Order) }

// Solution materializes the k-prefix as a Solution identical to what a solo
// solve with target k would have returned (k ≥ 2 for best-pair-opened
// traces). Targets above the recorded length clamp to it.
func (t *GreedyTrace) Solution(k int) *Solution {
	if k > len(t.Order) {
		k = len(t.Order)
	}
	members := append([]int(nil), t.Order[:k]...)
	sort.Ints(members)
	sol := &Solution{Members: members}
	if k > 0 {
		sol.Value, sol.FValue, sol.Dispersion = t.Value[k-1], t.FValue[k-1], t.Dispersion[k-1]
	}
	return sol
}

// withTrace makes a greedy run record every addition into t.
func withTrace(t *GreedyTrace) GreedyOption {
	return func(c *greedyCfg) { c.trace = t }
}

// PrefixNested reports whether the algorithm's solutions nest by prefix at
// cardinality target k: one traced run to K ≥ k answers every smaller
// target. Greedy and the oblivious ablation always nest; the best-pair
// opening nests only from k = 2 up (its opening differs from the k = 1
// greedy pick); local search, exact, and Gollapudi–Sharma never nest.
func PrefixNested(algo Algo, k int) bool {
	switch algo {
	case AlgoGreedy, AlgoOblivious:
		return true
	case AlgoGreedyImproved:
		return k >= 2
	default:
		return false
	}
}

// SolveTrace runs a prefix-nested greedy to spec.K recording the addition
// order and per-prefix values; Trace.Solution(k) then reproduces the solo
// Solve result for every k ≤ spec.K the nesting covers. Algorithms that are
// not prefix-nested return an error — callers gate on PrefixNested.
func SolveTrace(obj *Objective, spec Spec) (*GreedyTrace, error) {
	if err := ctxErr(spec.Ctx); err != nil {
		return nil, err
	}
	t := &GreedyTrace{}
	gopts := []GreedyOption{WithPool(spec.Pool), WithContext(spec.Ctx), withTrace(t)}
	var err error
	switch spec.Algo {
	case AlgoGreedy:
		_, err = GreedyB(obj, spec.K, gopts...)
	case AlgoGreedyImproved:
		_, err = GreedyB(obj, spec.K, append(gopts, WithBestPairStart())...)
	case AlgoOblivious:
		_, err = GreedyOblivious(obj, spec.K, gopts...)
	default:
		return nil, fmt.Errorf("core: SolveTrace: algorithm %d is not prefix-nested", spec.Algo)
	}
	if err != nil {
		return nil, err
	}
	return t, nil
}
