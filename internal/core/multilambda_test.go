package core

import (
	"context"
	"math/rand"
	"slices"
	"testing"

	"maxsumdiv/internal/engine"
	"maxsumdiv/internal/metric"
	"maxsumdiv/internal/setfunc"
)

// multiLambdaInstance builds a modular-quality objective over the given
// metric; the objective's own λ is a placeholder (SolveMultiTrace ignores
// it, and solo comparison runs rebuild the objective per target λ).
func multiLambdaInstance(t testing.TB, n int, d metric.Metric, rng *rand.Rand) (*setfunc.Modular, *Objective) {
	t.Helper()
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Float64()
	}
	mod, err := setfunc.NewModular(w)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := NewObjective(mod, 1, d)
	if err != nil {
		t.Fatal(err)
	}
	return mod, obj
}

// vecMetricForTest builds a compute-on-demand vector snapshot (the backend
// whose row folds the multi-λ solve exists to share).
func vecMetricForTest(t testing.TB, n, dim int, rng *rand.Rand) metric.Metric {
	t.Helper()
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for k := range v {
			v[k] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	s, err := metric.NewVecStoreFromVectors(metric.KindVecF32, vecs)
	if err != nil {
		t.Fatal(err)
	}
	return s.Snapshot()
}

// TestSolveMultiTraceMatchesSolo pins the tentpole contract: a multi-λ
// shared solve answers every (λ, K) target bit-identically — same picks,
// same floating-point values — to a solo traced solve of that target. Runs
// across both greedy variants, dense and vector metrics, and serial and
// parallel pools, with λ sets chosen so branches diverge mid-run.
func TestSolveMultiTraceMatchesSolo(t *testing.T) {
	const n, dim = 120, 16
	rng := rand.New(rand.NewSource(71))
	dense := metric.NewDense(n)
	dense.Fill(func(i, j int) float64 { return 1 + rng.Float64() })
	metrics := []struct {
		name string
		d    metric.Metric
	}{
		{"dense-f64", dense},
		{"vec-f32-snap", vecMetricForTest(t, n, dim, rng)},
	}
	targetSets := [][]LambdaTarget{
		{{Lambda: 0.5, K: 10}},
		{{Lambda: 0.5, K: 8}, {Lambda: 0.5, K: 12}},                     // same λ, different K: one branch
		{{Lambda: 0.1, K: 10}, {Lambda: 1.0, K: 10}, {Lambda: 5, K: 6}}, // divergent branches
		{{Lambda: 0, K: 5}, {Lambda: 0.7, K: 15}, {Lambda: 0.7, K: 3}, {Lambda: 2.5, K: 9}},
		{{Lambda: 1.2, K: 0}, {Lambda: 0.4, K: 7}}, // K = 0 target records nothing
	}
	for _, m := range metrics {
		for _, algo := range []Algo{AlgoGreedy, AlgoOblivious} {
			for _, pool := range []*engine.Pool{nil, engine.New(4)} {
				for si, targets := range targetSets {
					mrng := rand.New(rand.NewSource(int64(91 + si)))
					mod, obj := multiLambdaInstance(t, n, m.d, mrng)
					traces, err := SolveMultiTrace(obj, Spec{Algo: algo, Pool: pool}, targets)
					if err != nil {
						t.Fatalf("%s algo=%d set=%d: %v", m.name, algo, si, err)
					}
					if len(traces) != len(targets) {
						t.Fatalf("%s algo=%d set=%d: %d traces for %d targets", m.name, algo, si, len(traces), len(targets))
					}
					for j, target := range targets {
						solObj, err := NewObjective(mod, target.Lambda, m.d)
						if err != nil {
							t.Fatal(err)
						}
						want, err := SolveTrace(solObj, Spec{Algo: algo, K: target.K, Pool: pool})
						if err != nil {
							t.Fatal(err)
						}
						got := traces[j]
						if !slices.Equal(got.Order, want.Order) {
							t.Fatalf("%s algo=%d set=%d target=%d (λ=%g K=%d): order %v, solo %v",
								m.name, algo, si, j, target.Lambda, target.K, got.Order, want.Order)
						}
						if !slices.Equal(got.Value, want.Value) || !slices.Equal(got.FValue, want.FValue) ||
							!slices.Equal(got.Dispersion, want.Dispersion) {
							t.Fatalf("%s algo=%d set=%d target=%d (λ=%g K=%d): values diverge from solo\n got %v %v %v\nwant %v %v %v",
								m.name, algo, si, j, target.Lambda, target.K,
								got.Value, got.FValue, got.Dispersion,
								want.Value, want.FValue, want.Dispersion)
						}
					}
				}
			}
		}
	}
}

// TestSolveMultiTraceValidation pins the error contract: non-foldable
// algorithms, non-modular quality, and invalid targets are rejected.
func TestSolveMultiTraceValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	obj := randInstance(t, 20, 0.5, rng)
	if _, err := SolveMultiTrace(obj, Spec{Algo: AlgoGreedyImproved}, []LambdaTarget{{Lambda: 1, K: 2}}); err == nil {
		t.Fatal("best-pair opening accepted; its opening is λ-dependent")
	}
	if _, err := SolveMultiTrace(obj, Spec{Algo: AlgoGreedy}, []LambdaTarget{{Lambda: -1, K: 2}}); err == nil {
		t.Fatal("negative λ accepted")
	}
	if _, err := SolveMultiTrace(obj, Spec{Algo: AlgoGreedy}, []LambdaTarget{{Lambda: 1, K: 21}}); err == nil {
		t.Fatal("K beyond ground size accepted")
	}
	sub := randSubmodularInstance(t, 20, 8, 0.5, rng)
	if _, err := SolveMultiTrace(sub, Spec{Algo: AlgoGreedy}, []LambdaTarget{{Lambda: 1, K: 2}}); err == nil {
		t.Fatal("submodular quality accepted; the fold requires modular weights")
	}
	if traces, err := SolveMultiTrace(obj, Spec{Algo: AlgoGreedy}, nil); err != nil || len(traces) != 0 {
		t.Fatalf("empty targets: %v traces, err %v", traces, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveMultiTrace(obj, Spec{Algo: AlgoGreedy, Ctx: ctx}, []LambdaTarget{{Lambda: 1, K: 2}}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

// TestMultiLambdaCapable pins which algorithms the dispatcher may fold.
func TestMultiLambdaCapable(t *testing.T) {
	for algo, want := range map[Algo]bool{
		AlgoGreedy:          true,
		AlgoOblivious:       true,
		AlgoGreedyImproved:  false,
		AlgoLocalSearch:     false,
		AlgoExact:           false,
		AlgoGollapudiSharma: false,
	} {
		if got := MultiLambdaCapable(algo); got != want {
			t.Fatalf("MultiLambdaCapable(%d) = %v, want %v", algo, got, want)
		}
	}
}
