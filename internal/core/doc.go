// Package core implements the paper's primary contribution: algorithms for
// max-sum diversification — maximizing φ(S) = f(S) + λ·Σ_{u,v∈S} d(u,v) for a
// normalized monotone (sub)modular quality function f and a metric d —
// subject to a cardinality or general matroid constraint, together with the
// baselines the paper evaluates against.
//
// # Algorithms and paper sections
//
//   - GreedyB (Section 4, Theorem 1): the non-oblivious vertex greedy, a
//     2-approximation under a cardinality constraint; with f ≡ 0 it is the
//     Ravi et al. dispersion greedy (Corollary 1, DispersionGreedy).
//   - GreedyA (Section 3 / Section 7 baseline): the Gollapudi–Sharma
//     reduction to max-sum dispersion plus the Hassin–Rubinstein–Tamir edge
//     greedy; modular quality only.
//   - LocalSearch (Section 5, Theorem 2): the oblivious single-swap local
//     search, a 2-approximation under any matroid constraint.
//   - GreedyMatroid (Section 4 / Appendix): the potential greedy under a
//     matroid — unbounded ratio in general, kept as the paper's negative
//     result and as a LocalSearch initializer.
//   - GreedyOblivious: the ablation of the non-oblivious ½-factor (no
//     guarantee; it measures what Theorem 1's potential buys).
//   - Exact / ExactMatroid: branch-and-bound optimal solvers for the OPT
//     columns of Tables 1, 3, 4, 8 and Figure 1.
//   - GreedyKnapsack, MMR: the conclusion's open knapsack question
//     (Sviridenko-style heuristic) and the Section 2 ancestor baseline.
//
// # Execution model
//
// All algorithms share the incremental State, which maintains d_u(S) for all
// u in O(n) per insertion — the Birnbaum–Goldman bookkeeping the paper
// quotes to make the greedy run in O(np) total. Every argmax-over-candidates
// step (marginal potentials, swap gains, edge weights, pair openings) can
// additionally be sharded across the bounded worker pool of
// maxsumdiv/internal/engine: pass core.WithPool to the greedy family or
// LSOptions.Pool to the local search. Selection rules are total orders
// (best score, ties to the lowest index), so parallel runs return solutions
// byte-identical to serial ones.
package core
