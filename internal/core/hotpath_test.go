package core

import (
	"math"
	"math/rand"
	"testing"

	"maxsumdiv/internal/engine"
	"maxsumdiv/internal/matroid"
	"maxsumdiv/internal/metric"
	"maxsumdiv/internal/setfunc"
)

// pointObjectives builds a modular objective over random Euclidean points
// twice: once on the float64 Dense backend, once on the blocked DenseF32
// backend. Both see the exact same weights and underlying geometry.
func pointObjectives(t testing.TB, n, dim int, seed int64) (f64, f32 *Objective) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	weights := make([]float64, n)
	for i := range pts {
		pts[i] = make([]float64, dim)
		for k := range pts[i] {
			pts[i][k] = rng.Float64()
		}
		weights[i] = rng.Float64()
	}
	raw, err := metric.NewPoints(pts, metric.L2)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(d metric.Metric) *Objective {
		mod, err := setfunc.NewModular(weights)
		if err != nil {
			t.Fatal(err)
		}
		obj, err := NewObjective(mod, 0.2, d)
		if err != nil {
			t.Fatal(err)
		}
		return obj
	}
	return mk(metric.Materialize(raw)), mk(metric.MaterializeF32(raw))
}

// assertClose fails unless a and b agree to within rel relative tolerance.
func assertClose(t *testing.T, what string, a, b, rel float64) {
	t.Helper()
	den := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	if math.Abs(a-b)/den > rel {
		t.Fatalf("%s: %g vs %g (rel %.2g > %.2g)", what, a, b, math.Abs(a-b)/den, rel)
	}
}

// TestGreedyBFloat32MatchesFloat64 checks that the float32 backend solves to
// the same objective value as the float64 path within float32 rounding: the
// selected sets are evaluated under the float64 objective so a swap of
// near-tied candidates cannot hide a real quality loss.
func TestGreedyBFloat32MatchesFloat64(t *testing.T) {
	for _, n := range []int{60, 500} {
		f64, f32 := pointObjectives(t, n, 16, int64(n))
		k := n / 10
		s64, err := GreedyB(f64, k)
		if err != nil {
			t.Fatal(err)
		}
		s32, err := GreedyB(f32, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(s32.Members) != k {
			t.Fatalf("n=%d: float32 greedy picked %d members, want %d", n, len(s32.Members), k)
		}
		// Compare both solutions under the float64 objective.
		assertClose(t, "greedy value", f64.Value(s64.Members), f64.Value(s32.Members), 1e-4)
		// And the reported value against its own recomputation.
		assertClose(t, "reported value", s32.Value, f32.Value(s32.Members), 1e-6)
	}
}

// TestLocalSearchFloat32MatchesFloat64 is the local-search analogue, seeded
// from each backend's own greedy solution as in the paper's LS setup.
func TestLocalSearchFloat32MatchesFloat64(t *testing.T) {
	const n, k = 200, 16
	f64, f32 := pointObjectives(t, n, 16, 5)
	uni, err := matroid.NewUniform(n, k)
	if err != nil {
		t.Fatal(err)
	}
	run := func(obj *Objective) *Solution {
		g, err := GreedyB(obj, k)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := LocalSearch(obj, uni, &LSOptions{Init: g.Members})
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	s64, s32 := run(f64), run(f32)
	assertClose(t, "local-search value", f64.Value(s64.Members), f64.Value(s32.Members), 1e-4)
}

// TestFloat32SerialParallelIdentical: on the same backend, every worker
// count must return byte-identical solutions (the engine's total-order
// selection contract, now exercised through the f32 row-accumulate path).
func TestFloat32SerialParallelIdentical(t *testing.T) {
	const n, k = 300, 24
	_, f32 := pointObjectives(t, n, 8, 11)
	serial, err := GreedyB(f32, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		par, err := GreedyB(f32, k, WithPool(engine.New(workers)))
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Members) != len(serial.Members) || par.Value != serial.Value {
			t.Fatalf("workers=%d: solution diverged: %v (%.17g) vs serial %v (%.17g)",
				workers, par.Members, par.Value, serial.Members, serial.Value)
		}
		for i := range par.Members {
			if par.Members[i] != serial.Members[i] {
				t.Fatalf("workers=%d: member %d = %d, want %d", workers, i, par.Members[i], serial.Members[i])
			}
		}
	}

	uni, err := matroid.NewUniform(n, k)
	if err != nil {
		t.Fatal(err)
	}
	lsSerial, err := LocalSearch(f32, uni, &LSOptions{Init: serial.Members})
	if err != nil {
		t.Fatal(err)
	}
	lsPar, err := LocalSearch(f32, uni, &LSOptions{Init: serial.Members, Pool: engine.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	if lsSerial.Value != lsPar.Value || lsSerial.Swaps != lsPar.Swaps {
		t.Fatalf("local search diverged: serial %.17g/%d swaps, parallel %.17g/%d swaps",
			lsSerial.Value, lsSerial.Swaps, lsPar.Value, lsPar.Swaps)
	}
}

// TestGreedyRoundZeroAllocs pins the zero-allocation contract of the steady
// state: with modular quality, a row-accumulating backend, and a serial
// pool, a full greedy round — the argmax-over-candidates scan plus the
// State.Add row fold — must not allocate once the scanner's cached closures
// exist. This is the regression fence for the hot path; the bench suite
// tracks the same property end to end as allocs/op.
func TestGreedyRoundZeroAllocs(t *testing.T) {
	_, f32 := pointObjectives(t, 2048, 8, 3)
	st := f32.AcquireState()
	defer f32.ReleaseState(st)
	sc := newScanner(st, nil)
	// Warm: realize the cached scorer closures and grow members capacity.
	for i := 0; i < 4; i++ {
		b := sc.argmaxPotential()
		st.Add(b.Index)
		sc.added(b.Index)
	}
	st.Remove(st.members[len(st.members)-1])
	allocs := testing.AllocsPerRun(50, func() {
		b := sc.argmaxPotential()
		st.Add(b.Index)
		sc.added(b.Index)
		st.Remove(b.Index) // keep the set stable across runs
	})
	if allocs != 0 {
		t.Fatalf("steady-state greedy round allocates %.1f times per run, want 0", allocs)
	}
}

// TestSwapScanZeroAllocs is the local-search analogue: one bestSwap
// neighborhood scan in steady state must not allocate on the serial path.
func TestSwapScanZeroAllocs(t *testing.T) {
	_, f32 := pointObjectives(t, 1024, 8, 9)
	st := f32.AcquireState()
	defer f32.ReleaseState(st)
	for u := 0; u < 12; u++ {
		st.Add(u)
	}
	sc := newScanner(st, nil)
	members := st.Members()
	if b := sc.bestSwap(members, 1e-12, nil); b.Index == -1 {
		t.Skip("instance already locally optimal; scan still exercised")
	}
	allocs := testing.AllocsPerRun(20, func() {
		_ = sc.bestSwap(members, 1e-12, nil)
	})
	if allocs != 0 {
		t.Fatalf("steady-state swap scan allocates %.1f times per run, want 0", allocs)
	}
}

// TestSwapRoundZeroAllocsUniform pins the local-search steady state under
// the uniform constraint: one full improving-swap round — the bestSwap
// neighborhood scan, the applied State.Swap, and the in-place members
// refresh — must not allocate. Uniform matroids take the no-filter fast
// path (every swap preserves |S|), exactly as LocalSearch routes them.
func TestSwapRoundZeroAllocsUniform(t *testing.T) {
	_, f32 := pointObjectives(t, 1024, 8, 13)
	st := f32.AcquireState()
	defer f32.ReleaseState(st)
	for u := 0; u < 12; u++ {
		st.Add(u)
	}
	sc := newScanner(st, nil)
	members := append([]int(nil), st.members...)
	// Warm: realize cached closures, then run rounds like LocalSearch does.
	allocs := testing.AllocsPerRun(20, func() {
		b := sc.bestSwap(members, 1e-12, nil)
		if b.Index == -1 {
			return
		}
		st.Swap(b.Aux, b.Index)
		sc.swapped(b.Aux, b.Index)
		members = append(members[:0], st.members...)
	})
	if allocs != 0 {
		t.Fatalf("uniform swap round allocates %.1f times per run, want 0", allocs)
	}
}

// TestSwapRoundZeroAllocsMatroid is the matroid-filtered analogue: swap
// probes route through a per-worker Prober whose scratch amortizes across
// rounds, so even with a partition constraint in the loop the steady-state
// round must not allocate. This (plus the Prober) is the fix for the
// ~1.2k allocs/op the pre-redesign local search paid per swap pass.
func TestSwapRoundZeroAllocsMatroid(t *testing.T) {
	const n, k = 1024, 12
	_, f32 := pointObjectives(t, n, 8, 17)
	partOf := make([]int, n)
	caps := make([]int, 4)
	for i := range partOf {
		partOf[i] = i % 4
	}
	for i := range caps {
		caps[i] = k
	}
	m, err := matroid.NewPartition(partOf, caps)
	if err != nil {
		t.Fatal(err)
	}
	st := f32.AcquireState()
	defer f32.ReleaseState(st)
	for u := 0; u < k; u++ {
		st.Add(u)
	}
	sc := newScanner(st, nil)
	members := append([]int(nil), st.members...)
	probers := make([]matroid.Prober, 1)
	canSwap := func(worker, out, in int) bool {
		return probers[worker].CanSwap(m, members, out, in)
	}
	// Warm one round so the prober's buffer and scorer closures exist.
	if b := sc.bestSwap(members, 1e-12, canSwap); b.Index != -1 {
		st.Swap(b.Aux, b.Index)
		sc.swapped(b.Aux, b.Index)
		members = append(members[:0], st.members...)
	}
	allocs := testing.AllocsPerRun(20, func() {
		b := sc.bestSwap(members, 1e-12, canSwap)
		if b.Index == -1 {
			return
		}
		st.Swap(b.Aux, b.Index)
		sc.swapped(b.Aux, b.Index)
		members = append(members[:0], st.members...)
	})
	if allocs != 0 {
		t.Fatalf("matroid swap round allocates %.1f times per run, want 0", allocs)
	}
}

// TestLocalSearchCallAllocsBounded fences the whole LocalSearch call: with
// pooled state, cached scorer closures, per-worker probers and the in-place
// member snapshots, an entire bounded polish (the bench workload) must stay
// within a small constant allocation budget — the regression fence for the
// ROADMAP's "local search allocates ~1.2k/op" item.
func TestLocalSearchCallAllocsBounded(t *testing.T) {
	const n, k = 1000, 16
	_, f32 := pointObjectives(t, n, 16, 19)
	uni, err := matroid.NewUniform(n, k)
	if err != nil {
		t.Fatal(err)
	}
	init, err := GreedyB(f32, k)
	if err != nil {
		t.Fatal(err)
	}
	opts := &LSOptions{Init: init.Members, MaxSwaps: 4}
	if _, err := LocalSearch(f32, uni, opts); err != nil {
		t.Fatal(err) // warm the state pool
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := LocalSearch(f32, uni, opts); err != nil {
			t.Fatal(err)
		}
	})
	// The remaining per-call allocations are setup (scanner + cached
	// closures, the basis extension, the solution snapshot), not per-swap
	// or per-probe work.
	const budget = 64
	if allocs > budget {
		t.Fatalf("LocalSearch allocates %.0f times per call, want ≤ %d", allocs, budget)
	}
}

// TestStatePoolReuse checks AcquireState actually recycles and resets.
func TestStatePoolReuse(t *testing.T) {
	_, f32 := pointObjectives(t, 64, 4, 21)
	st := f32.AcquireState()
	st.Add(3)
	st.Add(7)
	f32.ReleaseState(st)
	st2 := f32.AcquireState()
	if st2 != st {
		// The runtime may clear a sync.Pool at any time; only verify the
		// reset contract when recycling did happen.
		t.Logf("pool did not recycle (GC?); skipping identity check")
	}
	if st2.Size() != 0 || st2.Value() != 0 {
		t.Fatalf("acquired state not reset: size=%d value=%g", st2.Size(), st2.Value())
	}
	for u := 0; u < 64; u++ {
		if st2.Contains(u) {
			t.Fatalf("acquired state still contains %d", u)
		}
		if st2.DistToSet(u) != 0 {
			t.Fatalf("acquired state has du[%d] = %g", u, st2.DistToSet(u))
		}
	}
	f32.ReleaseState(st2)

	// Releasing to the wrong objective must be a no-op, not a poisoning.
	_, other := pointObjectives(t, 64, 4, 22)
	other.ReleaseState(st2)
}
