package core

import (
	"math/rand"
	"testing"

	"maxsumdiv/internal/metric"
	"maxsumdiv/internal/setfunc"
)

// The ½ factor in the paper's potential is not cosmetic: there are instances
// where the oblivious rule (full f marginal) picks a heavy-but-central
// element first and lands measurably below the non-oblivious greedy.
func TestNonObliviousPotentialMatters(t *testing.T) {
	// One heavy element 0 at the center, two light far-apart elements 1, 2:
	// d(0,·) = 1, d(1,2) = 2, λ = 1. The optimum is the far pair {1,2}
	// (φ = 2) whenever w0 < 1, but any greedy whose first pick is decided
	// purely by weight locks in element 0 and tops out at w0 + 1. The sweep
	// checks the structural claims for several calibrations.
	d, err := metric.NewDenseFromMatrix([][]float64{
		{0, 1, 1},
		{1, 0, 2},
		{1, 2, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w0 := range []float64{0.5, 1.0, 1.5, 1.9} {
		mod, _ := setfunc.NewModular([]float64{w0, 0, 0})
		obj, _ := NewObjective(mod, 1, d)
		obl, err := GreedyOblivious(obj, 2)
		if err != nil {
			t.Fatal(err)
		}
		nonObl, err := GreedyB(obj, 2)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Exact(obj, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		// φ({1,2}) = 2; φ({0,·}) = w0 + 1. The optimum is {1,2} whenever
		// w0 < 1.
		if w0 < 1 && !(opt.Contains(1) && opt.Contains(2)) {
			t.Fatalf("w0=%g: expected optimum {1,2}, got %v", w0, opt.Members)
		}
		// Oblivious greedy takes 0 first whenever w0 > max distance gain 0,
		// i.e. always — and then can at best reach w0 + 1.
		if !obl.Contains(0) {
			t.Fatalf("w0=%g: oblivious greedy should take the heavy element first", w0)
		}
		// Non-oblivious greedy discounts w0 by ½: for w0 < 2 its first pick
		// decides by ½w0 vs 0, still element 0 — but Theorem 1 still holds.
		if nonObl.Value < opt.Value/2-1e-9 {
			t.Fatalf("w0=%g: Theorem 1 violated by potential greedy", w0)
		}
	}
}

// On random instances the two rules are usually close, but the potential
// rule must retain its Theorem 1 guarantee while the oblivious rule can dip
// below — track both against the optimum.
func TestObliviousVsPotentialOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	var oblWorst, potWorst float64 = 1, 1
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.Intn(4)
		p := 2 + rng.Intn(4)
		obj := randInstance(t, n, 0.2+rng.Float64(), rng)
		obl, err := GreedyOblivious(obj, p)
		if err != nil {
			t.Fatal(err)
		}
		pot, err := GreedyB(obj, p)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Exact(obj, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r := opt.Value / obl.Value; r > oblWorst {
			oblWorst = r
		}
		if r := opt.Value / pot.Value; r > potWorst {
			potWorst = r
		}
		if pot.Value < opt.Value/2-1e-9 {
			t.Fatalf("trial %d: potential greedy broke Theorem 1", trial)
		}
	}
	t.Logf("worst observed ratios: oblivious %.4f, potential %.4f", oblWorst, potWorst)
}

func TestGreedyObliviousEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	obj := randInstance(t, 5, 0.2, rng)
	if _, err := GreedyOblivious(obj, -1); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := GreedyOblivious(obj, 6); err == nil {
		t.Error("p > n accepted")
	}
	sol, err := GreedyOblivious(obj, 0)
	if err != nil || len(sol.Members) != 0 {
		t.Errorf("p=0: %v %v", sol, err)
	}
}
