package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"maxsumdiv/internal/matroid"
)

// ExactOptions configures the exact solver.
type ExactOptions struct {
	// Parallel fans the search out over the first chosen element across
	// Workers goroutines.
	Parallel bool
	// Workers bounds the parallel fan-out (≤ 0 selects GOMAXPROCS).
	Workers int
	// NoPrune disables the branch-and-bound upper-bound cut (useful for
	// testing the bound itself).
	NoPrune bool
	// Ctx, when non-nil, cancels the enumeration: every searcher polls it
	// once per ctxCheckNodes tree nodes and Exact returns ctx.Err(). This
	// is the essential guard for an exponential solver behind a serving
	// deadline.
	Ctx context.Context
}

// ctxCheckNodes is how many search-tree nodes an exact searcher expands
// between context polls.
const ctxCheckNodes = 4096

// Exact computes an optimal size-p subset by exhaustive enumeration with
// branch-and-bound pruning, using the incremental State so that each tree
// edge costs O(n). This is how the paper obtains the OPT columns of Tables
// 1, 3, 4, 8 and the denominators of Figure 1 (N = 50, p ≤ 7 scale).
//
// The pruning bound is valid for any normalized monotone submodular f: with
// r slots left, the objective can rise by at most the sum of the r largest
// current marginals φ_u(S) plus λ·C(r,2)·max-distance (future pairwise
// distances among the r newcomers).
func Exact(obj *Objective, p int, opts *ExactOptions) (*Solution, error) {
	if err := checkP(obj, p); err != nil {
		return nil, err
	}
	if opts == nil {
		opts = &ExactOptions{}
	}
	n := obj.N()
	if p == 0 || n == 0 {
		st := obj.NewState()
		return solutionFromState(st, 0), nil
	}

	dmax := 0.0
	for i := 1; i < n; i++ {
		if ctxErr(opts.Ctx) != nil {
			return nil, opts.Ctx.Err()
		}
		for j := 0; j < i; j++ {
			if d := obj.d.Distance(i, j); d > dmax {
				dmax = d
			}
		}
	}

	if !opts.Parallel {
		e := newExactSearcher(obj, p, dmax, !opts.NoPrune)
		e.ctx = opts.Ctx
		e.search(0)
		if err := ctxErr(opts.Ctx); err != nil {
			return nil, err
		}
		return e.best(), nil
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n-p+1 {
		workers = n - p + 1
	}
	if workers < 1 {
		workers = 1
	}
	firsts := make(chan int, n)
	for first := 0; first <= n-p; first++ {
		firsts <- first
	}
	close(firsts)

	var mu sync.Mutex
	var globalBest *Solution
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := newExactSearcher(obj, p, dmax, !opts.NoPrune)
			e.ctx = opts.Ctx
			for first := range firsts {
				if e.stopped || ctxErr(opts.Ctx) != nil {
					e.stopped = true
					return
				}
				mu.Lock()
				if globalBest != nil {
					// Seed this worker's incumbent with the global one so
					// pruning stays sharp.
					e.bestVal, e.hasBest = globalBest.Value, true
				}
				mu.Unlock()
				e.st.Reset()
				e.st.Add(first)
				e.searchFrom(first + 1)
				e.st.Remove(first)
			}
			sol := e.best()
			if sol == nil {
				return
			}
			mu.Lock()
			if globalBest == nil || sol.Value > globalBest.Value {
				globalBest = sol
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, err
	}
	if globalBest == nil {
		return nil, fmt.Errorf("core: exact search found no solution (internal error)")
	}
	return globalBest, nil
}

// exactSearcher carries the DFS state for one worker.
type exactSearcher struct {
	obj     *Objective
	p       int
	st      *State
	dmax    float64
	prune   bool
	bestVal float64
	bestSet []int
	hasBest bool
	topBuf  []float64 // scratch for the top-r marginal selection
	ctx     context.Context
	nodes   int  // expansions since the last context poll
	stopped bool // a context poll failed; unwind the DFS
}

func newExactSearcher(obj *Objective, p int, dmax float64, prune bool) *exactSearcher {
	return &exactSearcher{
		obj:    obj,
		p:      p,
		st:     obj.NewState(),
		dmax:   dmax,
		prune:  prune,
		topBuf: make([]float64, 0, p),
	}
}

// search explores completions of the current state choosing indices ≥ from.
func (e *exactSearcher) search(from int) { e.searchFrom(from) }

func (e *exactSearcher) searchFrom(from int) {
	if e.stopped {
		return
	}
	if e.ctx != nil {
		if e.nodes++; e.nodes >= ctxCheckNodes {
			e.nodes = 0
			if e.ctx.Err() != nil {
				e.stopped = true
				return
			}
		}
	}
	if e.st.Size() == e.p {
		v := e.st.Value()
		if !e.hasBest || v > e.bestVal {
			e.bestVal = v
			e.bestSet = e.st.Members()
			e.hasBest = true
		}
		return
	}
	r := e.p - e.st.Size()
	n := e.obj.N()
	if n-from < r {
		return // not enough elements left
	}
	if e.prune && e.hasBest {
		if e.upperBound(from, r) <= e.bestVal {
			return
		}
	}
	// Keep enough suffix for the remaining slots.
	for u := from; u <= n-r; u++ {
		e.st.Add(u)
		e.searchFrom(u + 1)
		e.st.Remove(u)
		if e.stopped {
			return
		}
	}
}

// upperBound bounds φ of any completion with r elements from [from, n):
// current φ(S) + sum of the r largest marginals φ_u(S) + λ·C(r,2)·dmax.
// Validity: monotone submodular f gives f(S∪D) − f(S) ≤ Σ_{u∈D} f_u(S), and
// each newcomer's distance to S is d_u(S) while distances among newcomers
// are ≤ dmax each.
func (e *exactSearcher) upperBound(from, r int) float64 {
	n := e.obj.N()
	e.topBuf = e.topBuf[:0]
	for u := from; u < n; u++ {
		m := e.st.MarginalObjective(u)
		insertTopR(&e.topBuf, m, r)
	}
	var sum float64
	for _, v := range e.topBuf {
		sum += v
	}
	pairs := float64(r*(r-1)) / 2
	return e.st.Value() + sum + e.obj.lambda*pairs*e.dmax
}

// insertTopR maintains buf as the (unsorted-but-min-tracked) top-r values.
func insertTopR(buf *[]float64, v float64, r int) {
	b := *buf
	if len(b) < r {
		*buf = append(b, v)
		return
	}
	// Replace the minimum if v beats it.
	minIdx := 0
	for i := 1; i < len(b); i++ {
		if b[i] < b[minIdx] {
			minIdx = i
		}
	}
	if v > b[minIdx] {
		b[minIdx] = v
	}
}

func (e *exactSearcher) best() *Solution {
	if !e.hasBest || e.bestSet == nil {
		return nil
	}
	e.st.SetTo(e.bestSet)
	return solutionFromState(e.st, 0)
}

// ExactMatroid computes an optimal basis of the matroid by depth-first
// enumeration of independent sets (prefix pruning is sound because every
// subset of an independent set is independent). Exponential in general; used
// as the ground truth for the matroid-constrained tests.
func ExactMatroid(obj *Objective, m matroid.Matroid) (*Solution, error) {
	return ExactMatroidCtx(nil, obj, m)
}

// ExactMatroidCtx is ExactMatroid honoring a cancellation context: the DFS
// polls ctx once per ctxCheckNodes expansions and returns ctx.Err() — the
// guard that lets a serving deadline stop a matroid-constrained
// enumeration. A nil ctx never cancels.
func ExactMatroidCtx(ctx context.Context, obj *Objective, m matroid.Matroid) (*Solution, error) {
	if m.GroundSize() != obj.N() {
		return nil, fmt.Errorf("core: matroid ground size %d, objective has %d", m.GroundSize(), obj.N())
	}
	rank := m.Rank()
	st := obj.NewState()
	var bestSet []int
	bestVal := 0.0
	hasBest := false
	var members []int
	nodes, stopped := 0, false
	var pr matroid.Prober
	var dfs func(from int)
	dfs = func(from int) {
		if stopped {
			return
		}
		if ctx != nil {
			if nodes++; nodes >= ctxCheckNodes {
				nodes = 0
				if ctx.Err() != nil {
					stopped = true
					return
				}
			}
		}
		if st.Size() == rank {
			if v := st.Value(); !hasBest || v > bestVal {
				bestVal = v
				bestSet = st.Members()
				hasBest = true
			}
			return
		}
		for u := from; u < obj.N(); u++ {
			if !pr.CanAdd(m, members, u) {
				continue
			}
			st.Add(u)
			members = append(members, u)
			dfs(u + 1)
			members = members[:len(members)-1]
			st.Remove(u)
			if stopped {
				return
			}
		}
	}
	dfs(0)
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if !hasBest {
		// Rank 0: the empty set is the only basis.
		return solutionFromState(st, 0), nil
	}
	st.SetTo(bestSet)
	return solutionFromState(st, 0), nil
}
