package core

import (
	"math/rand"
	"slices"
	"testing"
)

// TestSolveTracePrefixesMatchSolo pins the contract the serving layer's
// batching dispatcher is built on: for every prefix-nested algorithm, one
// traced run to K reproduces the solo Solve result at every covered k —
// identical members AND bit-identical objective values, since the additions
// (and so the floating-point accumulation order) are the same.
func TestSolveTracePrefixesMatchSolo(t *testing.T) {
	const n, kMax = 60, 20
	for _, tc := range []struct {
		name string
		algo Algo
		minK int
	}{
		{"greedy", AlgoGreedy, 1},
		{"greedy-improved", AlgoGreedyImproved, 2},
		{"oblivious", AlgoOblivious, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			obj := randInstance(t, n, 0.7, rand.New(rand.NewSource(51)))
			trace, err := SolveTrace(obj, Spec{Algo: tc.algo, K: kMax})
			if err != nil {
				t.Fatal(err)
			}
			if trace.Len() != kMax {
				t.Fatalf("trace recorded %d additions, want %d", trace.Len(), kMax)
			}
			for k := tc.minK; k <= kMax; k++ {
				if !PrefixNested(tc.algo, k) {
					t.Fatalf("PrefixNested(%v, %d) = false inside the nested range", tc.algo, k)
				}
				want, err := Solve(obj, Spec{Algo: tc.algo, K: k})
				if err != nil {
					t.Fatal(err)
				}
				got := trace.Solution(k)
				if !slices.Equal(got.Members, want.Members) {
					t.Fatalf("k=%d: prefix members %v, solo %v", k, got.Members, want.Members)
				}
				if got.Value != want.Value || got.FValue != want.FValue || got.Dispersion != want.Dispersion {
					t.Fatalf("k=%d: prefix values (%v %v %v), solo (%v %v %v)", k,
						got.Value, got.FValue, got.Dispersion,
						want.Value, want.FValue, want.Dispersion)
				}
			}
			// Clamping past the recorded length returns the full solution.
			if got := trace.Solution(kMax + 5); len(got.Members) != kMax {
				t.Fatalf("over-length prefix returned %d members, want %d", len(got.Members), kMax)
			}
		})
	}
	// The non-nested algorithms must refuse a trace rather than mislead.
	obj := randInstance(t, 20, 0.5, rand.New(rand.NewSource(52)))
	for _, algo := range []Algo{AlgoLocalSearch, AlgoExact, AlgoGollapudiSharma} {
		if PrefixNested(algo, 5) {
			t.Fatalf("PrefixNested(%v) = true for a non-nested algorithm", algo)
		}
		if _, err := SolveTrace(obj, Spec{Algo: algo, K: 5}); err == nil {
			t.Fatalf("SolveTrace accepted non-nested algorithm %v", algo)
		}
	}
}
