package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"maxsumdiv/internal/engine"
	"maxsumdiv/internal/matroid"
	"maxsumdiv/internal/metric"
	"maxsumdiv/internal/setfunc"
)

// syntheticModular mirrors dataset.Synthetic (which can't be imported here:
// dataset depends on core): uniform weights, distances in [1, 2].
func syntheticModular(t *testing.T, n int, lambda float64, rng *rand.Rand) *Objective {
	t.Helper()
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Float64()
	}
	mod, err := setfunc.NewModular(w)
	if err != nil {
		t.Fatal(err)
	}
	d := metric.NewDense(n)
	d.Fill(func(i, j int) float64 { return 1 + rng.Float64() })
	obj, err := NewObjective(mod, lambda, d)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

// pools used against the serial baseline; 7 is deliberately coprime with
// nothing in particular so shard boundaries land awkwardly.
var testPools = []*engine.Pool{engine.New(2), engine.New(7), engine.New(16)}

func sameSolution(t *testing.T, label string, serial, parallel *Solution) {
	t.Helper()
	if !reflect.DeepEqual(serial.Members, parallel.Members) {
		t.Fatalf("%s: members diverge: serial %v, parallel %v", label, serial.Members, parallel.Members)
	}
	// Scores must be byte-identical, not just close: parallel scans evaluate
	// the same floating-point expressions on the same inputs.
	if serial.Value != parallel.Value || serial.FValue != parallel.FValue ||
		serial.Dispersion != parallel.Dispersion || serial.Swaps != parallel.Swaps {
		t.Fatalf("%s: stats diverge: serial %+v, parallel %+v", label, serial, parallel)
	}
}

// coverageObjective builds an objective with a genuinely submodular quality,
// exercising the per-worker evaluator clones.
func coverageObjective(t *testing.T, n int, rng *rand.Rand) *Objective {
	t.Helper()
	topics := n / 2
	covers := make([][]int, n)
	for u := range covers {
		k := 1 + rng.Intn(4)
		for i := 0; i < k; i++ {
			covers[u] = append(covers[u], rng.Intn(topics))
		}
	}
	weights := make([]float64, topics)
	for i := range weights {
		weights[i] = rng.Float64()
	}
	cov, err := setfunc.NewCoverage(covers, weights)
	if err != nil {
		t.Fatal(err)
	}
	d := metric.NewDense(n)
	d.Fill(func(i, j int) float64 { return 1 + rng.Float64() })
	obj, err := NewObjective(cov, 0.7, d)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestParallelGreedyMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		obj := syntheticModular(t, 520, 0.3, rng)
		cov := coverageObjective(t, 450, rng)
		for name, o := range map[string]*Objective{"modular": obj, "coverage": cov} {
			p := 15
			serialB, err := GreedyB(o, p)
			if err != nil {
				t.Fatal(err)
			}
			serialBPair, err := GreedyB(o, p, WithBestPairStart())
			if err != nil {
				t.Fatal(err)
			}
			serialObl, err := GreedyOblivious(o, p)
			if err != nil {
				t.Fatal(err)
			}
			for _, pool := range testPools {
				parB, err := GreedyB(o, p, WithPool(pool))
				if err != nil {
					t.Fatal(err)
				}
				sameSolution(t, name+"/GreedyB", serialB, parB)
				parPair, err := GreedyB(o, p, WithBestPairStart(), WithPool(pool))
				if err != nil {
					t.Fatal(err)
				}
				sameSolution(t, name+"/GreedyB+pair", serialBPair, parPair)
				parObl, err := GreedyOblivious(o, p, WithPool(pool))
				if err != nil {
					t.Fatal(err)
				}
				sameSolution(t, name+"/GreedyOblivious", serialObl, parObl)
			}
		}
	}
}

func TestParallelGreedyAMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		obj := syntheticModular(t, 430, 0.3, rng)
		for _, p := range []int{10, 11} { // even and odd (the leftover path)
			serial, err := GreedyA(obj, p, WithBestLastVertex())
			if err != nil {
				t.Fatal(err)
			}
			for _, pool := range testPools {
				par, err := GreedyA(obj, p, WithBestLastVertex(), WithPool(pool))
				if err != nil {
					t.Fatal(err)
				}
				sameSolution(t, "GreedyA", serial, par)
			}
		}
	}
}

func TestParallelLocalSearchMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		obj := syntheticModular(t, 410, 0.3, rng)
		uni, err := matroid.NewUniform(410, 10)
		if err != nil {
			t.Fatal(err)
		}
		partOf := make([]int, 410)
		caps := make([]int, 8)
		for i := range partOf {
			partOf[i] = i % 8
		}
		for i := range caps {
			caps[i] = 2
		}
		part, err := matroid.NewPartition(partOf, caps)
		if err != nil {
			t.Fatal(err)
		}
		cov := coverageObjective(t, 410, rng)
		type cse struct {
			name string
			obj  *Objective
			m    matroid.Matroid
		}
		for _, c := range []cse{
			{"uniform/modular", obj, uni},
			{"partition/modular", obj, part},
			{"uniform/coverage", cov, uni},
		} {
			serial, err := LocalSearch(c.obj, c.m, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, pool := range testPools {
				par, err := LocalSearch(c.obj, c.m, &LSOptions{Pool: pool})
				if err != nil {
					t.Fatal(err)
				}
				sameSolution(t, "LocalSearch/"+c.name, serial, par)
			}
		}
	}
}

// sqrtModular is a plain Function (no custom evaluator), so it routes
// through the order-sensitive generic evaluator — the worst case for
// float-residue canonicalization.
type sqrtModular struct{ w []float64 }

func (s sqrtModular) GroundSize() int { return len(s.w) }

func (s sqrtModular) Value(S []int) float64 {
	var sum float64
	for _, u := range S {
		sum += s.w[u]
	}
	return math.Sqrt(sum)
}

// TestParallelLocalSearchZeroSwapGenericQuality regresses the case where a
// search applies no swaps at all: the scan still probes every pair, and the
// residue those probes leave in the generic evaluator used to differ
// between serial and sharded runs.
func TestParallelLocalSearchZeroSwapGenericQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 450
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Float64()
	}
	d := metric.NewDense(n)
	d.Fill(func(i, j int) float64 { return 1 + rng.Float64() })
	obj, err := NewObjective(setfunc.AsSource(sqrtModular{w}), 0.3, d)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := matroid.NewUniform(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := LocalSearch(obj, uni, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Restart from the optimum: zero swaps, but a full scan still runs.
	serial, err := LocalSearch(obj, uni, &LSOptions{Init: opt.Members})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Swaps != 0 {
		t.Fatalf("restart from optimum applied %d swaps, want 0", serial.Swaps)
	}
	for _, pool := range testPools {
		par, err := LocalSearch(obj, uni, &LSOptions{Init: opt.Members, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		sameSolution(t, "LocalSearch/zero-swap-generic", serial, par)
	}
}

func TestParallelGreedyMatroidMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	obj := syntheticModular(t, 420, 0.4, rng)
	partOf := make([]int, 420)
	for i := range partOf {
		partOf[i] = i % 6
	}
	m, err := matroid.NewPartition(partOf, []int{2, 2, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := GreedyMatroid(obj, m)
	if err != nil {
		t.Fatal(err)
	}
	serialPair, err := GreedyMatroid(obj, m, WithBestPairStart())
	if err != nil {
		t.Fatal(err)
	}
	for _, pool := range testPools {
		par, err := GreedyMatroid(obj, m, WithPool(pool))
		if err != nil {
			t.Fatal(err)
		}
		sameSolution(t, "GreedyMatroid", serial, par)
		parPair, err := GreedyMatroid(obj, m, WithBestPairStart(), WithPool(pool))
		if err != nil {
			t.Fatal(err)
		}
		sameSolution(t, "GreedyMatroid+pair", serialPair, parPair)
	}
}

func TestBestSwapMatchesSerialScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	obj := syntheticModular(t, 500, 0.5, rng)
	st := obj.NewState()
	for u := 0; u < 12; u++ {
		st.Add(u * 7 % 500)
	}
	// Serial reference: max gain, ties to lowest in then earliest member.
	wantOut, wantIn, wantGain, wantOK := st.BestSwap(nil, 1e-15, nil)
	for _, pool := range testPools {
		out, in, gain, ok := st.BestSwap(pool, 1e-15, nil)
		if ok != wantOK || out != wantOut || in != wantIn || gain != wantGain {
			t.Fatalf("pool %d workers: BestSwap = (%d,%d,%g,%v), serial (%d,%d,%g,%v)",
				pool.Workers(), out, in, gain, ok, wantOut, wantIn, wantGain, wantOK)
		}
	}
	if wantOK {
		// The reported gain must match the state's own accounting.
		before := st.Value()
		if g := st.SwapGain(wantOut, wantIn); g != wantGain {
			t.Fatalf("SwapGain(%d,%d) = %g, BestSwap said %g", wantOut, wantIn, g, wantGain)
		}
		st.Swap(wantOut, wantIn)
		if diff := st.Value() - before; diff < wantGain-1e-9 || diff > wantGain+1e-9 {
			t.Fatalf("realized gain %g, promised %g", diff, wantGain)
		}
	}
}

func TestParallelMemoizedMetricMatchesDense(t *testing.T) {
	// The cached metric must be transparent: same solutions as the dense
	// materialization it replaces, under parallel scans.
	rng := rand.New(rand.NewSource(5))
	n := 460
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	raw, err := metric.NewPoints(pts, metric.L2)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = rng.Float64()
	}
	mod, err := setfunc.NewModular(weights)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewObjective(mod, 0.6, metric.Materialize(raw))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewObjective(mod, 0.6, metric.NewCached(raw))
	if err != nil {
		t.Fatal(err)
	}
	want, err := GreedyB(dense, 12)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GreedyB(cached, 12, WithPool(engine.New(8)))
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, "GreedyB/cached-metric", want, got)
}
