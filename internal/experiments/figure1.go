package experiments

import (
	"fmt"

	"maxsumdiv/internal/dynamic"
)

// Figure1Config parameterizes the dynamic-update experiment (Section 7.3).
type Figure1Config struct {
	// N, P size the synthetic instances. Paper scale: N=50, p=5 (the largest
	// Section 7.1 setting with computable OPT).
	N, P int
	// Lambdas is the x-axis grid.
	Lambdas []float64
	// Steps per repetition (paper: 20) and Repetitions (paper: 100).
	Steps, Repetitions int
	// Seed drives all randomness.
	Seed int64
	// Parallel fans repetitions across CPUs (OPT recomputation dominates).
	Parallel bool
}

// DefaultFigure1Config is the paper-scale configuration. Each (λ, env) cell
// costs Steps × Repetitions exact solves at C(N,P) scale — minutes of CPU;
// see QuickFigure1Config for a fast variant with the same qualitative shape.
func DefaultFigure1Config() Figure1Config {
	return Figure1Config{
		N: 50, P: 5,
		Lambdas:     []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		Steps:       20,
		Repetitions: 100,
		Seed:        7,
		Parallel:    true,
	}
}

// QuickFigure1Config is the reduced default used by the benchmark harness.
func QuickFigure1Config() Figure1Config {
	return Figure1Config{
		N: 30, P: 5,
		Lambdas:     []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0},
		Steps:       20,
		Repetitions: 10,
		Seed:        7,
		Parallel:    true,
	}
}

// Figure1Row is one λ setting: worst observed ratio per environment.
type Figure1Row struct {
	Lambda                 float64
	WorstV, WorstE, WorstM float64
	MeanV, MeanE, MeanM    float64
}

// Figure1Result carries the full series.
type Figure1Result struct {
	Config Figure1Config
	Rows   []Figure1Row
}

// RunFigure1 regenerates Figure 1: for every λ and each perturbation
// environment (VPERTURBATION, EPERTURBATION, MPERTURBATION), start from the
// greedy solution, run Steps rounds of perturb-then-single-oblivious-update,
// repeat Repetitions times, and record the worst exact approximation ratio.
func RunFigure1(cfg Figure1Config) (*Figure1Result, error) {
	if len(cfg.Lambdas) == 0 {
		return nil, fmt.Errorf("experiments: Figure1: empty lambda grid")
	}
	res := &Figure1Result{Config: cfg}
	for _, lambda := range cfg.Lambdas {
		row := Figure1Row{Lambda: lambda}
		for _, env := range []dynamic.Env{dynamic.VPerturbation, dynamic.EPerturbation, dynamic.MPerturbation} {
			sim, err := dynamic.Simulate(dynamic.SimConfig{
				N: cfg.N, P: cfg.P, Lambda: lambda,
				Steps: cfg.Steps, Repetitions: cfg.Repetitions,
				Env: env, Seed: cfg.Seed, Parallel: cfg.Parallel,
			})
			if err != nil {
				return nil, err
			}
			switch env {
			case dynamic.VPerturbation:
				row.WorstV, row.MeanV = sim.WorstRatio, sim.MeanRatio
			case dynamic.EPerturbation:
				row.WorstE, row.MeanE = sim.WorstRatio, sim.MeanRatio
			default:
				row.WorstM, row.MeanM = sim.WorstRatio, sim.MeanRatio
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the series as a table (worst ratio per λ per environment),
// the textual equivalent of the paper's Figure 1 plot.
func (r *Figure1Result) Render() string {
	headers := []string{"λ", "worst V", "worst E", "worst M", "mean V", "mean E", "mean M"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", row.Lambda),
			f3(row.WorstV), f3(row.WorstE), f3(row.WorstM),
			f3(row.MeanV), f3(row.MeanE), f3(row.MeanM),
		})
	}
	title := fmt.Sprintf("FIGURE 1: approximation ratio under dynamic updates (N=%d, p=%d, %d steps × %d reps; provable bound 3)",
		r.Config.N, r.Config.P, r.Config.Steps, r.Config.Repetitions)
	return renderTable(title, headers, rows)
}
