package experiments

import (
	"strings"
	"testing"
	"time"

	"maxsumdiv/internal/dataset"
)

func quickCorpus() dataset.LETORConfig {
	return dataset.LETORConfig{Queries: 5, DocsPerQuery: 60, Topics: 6, FeatureDim: 16, Seed: 1}
}

func TestRunTable1Quick(t *testing.T) {
	cfg := Table1Config{N: 20, Ps: []int{3, 4, 5}, Lambda: 0.2, Trials: 2, Seed: 1}
	res, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.OPT < row.GreedyA-1e-9 || row.OPT < row.GreedyB-1e-9 {
			t.Fatalf("p=%d: OPT below a heuristic (OPT=%g A=%g B=%g)", row.P, row.OPT, row.GreedyA, row.GreedyB)
		}
		if row.AFA < 1-1e-9 || row.AFB < 1-1e-9 {
			t.Fatalf("p=%d: AF below 1", row.P)
		}
		// Theorem 1 bound in observed form.
		if row.AFB > 2+1e-9 {
			t.Fatalf("p=%d: Greedy B observed AF %g exceeds 2", row.P, row.AFB)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "TABLE 1") || !strings.Contains(out, "AF_GreedyB") {
		t.Errorf("render missing headers:\n%s", out)
	}
}

func TestRunTable1Validation(t *testing.T) {
	if _, err := RunTable1(Table1Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := RunTable1(Table1Config{N: 5, Ps: []int{9}, Trials: 1}); err == nil {
		t.Error("p > N accepted")
	}
}

func TestRunTable3Quick(t *testing.T) {
	cfg := Table1Config{N: 15, Ps: []int{3, 4}, Lambda: 0.2, Trials: 1, Improved: true, Seed: 3}
	res, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "TABLE 3") {
		t.Errorf("improved run should render as Table 3:\n%s", out)
	}
}

func TestRunTable2Quick(t *testing.T) {
	cfg := Table2Config{N: 60, Ps: []int{4, 8}, Lambda: 0.2, Trials: 2, LSBudgetFactor: 10, Seed: 2}
	res, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.LS < row.GreedyB-1e-9 {
			t.Fatalf("p=%d: LS (%g) regressed below Greedy B (%g)", row.P, row.LS, row.GreedyB)
		}
		if row.GreedyA <= 0 || row.GreedyB <= 0 {
			t.Fatalf("p=%d: non-positive objective", row.P)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "TABLE 2") || !strings.Contains(out, "Time_A") {
		t.Errorf("render missing headers:\n%s", out)
	}
	if _, err := RunTable2(Table2Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := RunTable2(Table2Config{N: 5, Ps: []int{9}, Trials: 1}); err == nil {
		t.Error("p > N accepted")
	}
}

func TestRunTable4Quick(t *testing.T) {
	cfg := LetorConfig{
		Corpus: quickCorpus(), Lambda: 0.2, TopK: 25,
		Ps: []int{3, 4}, Queries: []int{0}, WithOPT: true,
	}
	res, err := RunTable4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.OPT < row.GreedyB-1e-9 || row.AFB < 1-1e-9 || row.AFB > 2+1e-9 {
			t.Fatalf("p=%d: inconsistent OPT/AF (OPT=%g B=%g AFB=%g)", row.P, row.OPT, row.GreedyB, row.AFB)
		}
	}
	if !strings.Contains(res.Render(), "TABLE 4") {
		t.Error("render missing title")
	}
}

func TestRunTable5Quick(t *testing.T) {
	cfg := LetorConfig{
		Corpus: quickCorpus(), Lambda: 0.2, TopK: 60,
		Ps: []int{5, 10}, Queries: []int{0}, LSBudgetFactor: 10,
	}
	res, err := RunTable5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.LS < row.GreedyB-1e-9 {
			t.Fatalf("p=%d: LS regressed", row.P)
		}
		if row.TimeA <= 0 || row.TimeB < 0 {
			t.Fatalf("p=%d: missing timings", row.P)
		}
	}
	if !strings.Contains(res.Render(), "TABLE 5") {
		t.Error("render missing title")
	}
}

func TestRunTable6And7Quick(t *testing.T) {
	cfg6 := LetorConfig{
		Corpus: quickCorpus(), Lambda: 0.2, TopK: 20,
		Ps: []int{3, 4}, Queries: []int{0, 1, 2}, WithOPT: true,
	}
	res6, err := RunTable6(cfg6)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res6.Render(), "TABLE 6") {
		t.Error("table 6 render missing title")
	}
	for _, row := range res6.Rows {
		if row.AFA < 1-1e-9 || row.AFB < 1-1e-9 {
			t.Fatalf("p=%d: AF below 1", row.P)
		}
	}

	cfg7 := LetorConfig{
		Corpus: quickCorpus(), Lambda: 0.2, TopK: 40,
		Ps: []int{5, 8}, Queries: []int{0, 1}, LSBudgetFactor: 5,
	}
	res7, err := RunTable7(cfg7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res7.Render(), "TABLE 7") {
		t.Error("table 7 render missing title")
	}
	for _, row := range res7.Rows {
		if row.RelLSB < 1-1e-9 {
			t.Fatalf("p=%d: LS/B ratio %g below 1", row.P, row.RelLSB)
		}
	}
}

func TestRunLetorValidation(t *testing.T) {
	if _, err := RunLetor(LetorConfig{}, 4); err == nil {
		t.Error("zero config accepted")
	}
	cfg := LetorConfig{Corpus: quickCorpus(), Ps: []int{3}, Queries: []int{99}}
	if _, err := RunLetor(cfg, 4); err == nil {
		t.Error("out-of-range query accepted")
	}
	cfg = LetorConfig{Corpus: quickCorpus(), Ps: []int{1000}, Queries: []int{0}, TopK: 10}
	if _, err := RunLetor(cfg, 4); err == nil {
		t.Error("p > docs accepted")
	}
}

func TestRunTable8Quick(t *testing.T) {
	cfg := Table8Config{Corpus: quickCorpus(), Lambda: 0.2, TopK: 20, Ps: []int{3, 5}, Query: 0}
	res, err := RunTable8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) != 2 {
		t.Fatalf("got %d blocks", len(res.Blocks))
	}
	for _, blk := range res.Blocks {
		if len(blk.GreedyA) != blk.P || len(blk.GreedyB) != blk.P || len(blk.OPT) != blk.P {
			t.Fatalf("p=%d: block sizes wrong", blk.P)
		}
		// Greedy B should agree with OPT at least as much as Greedy A does
		// in aggregate; check both overlap at least 0 (sanity) and render.
		if Overlap(blk.GreedyB, blk.OPT) < 0 {
			t.Fatal("impossible")
		}
	}
	out := res.Render()
	if !strings.Contains(out, "TABLE 8") || !strings.Contains(out, "Greedy A") {
		t.Errorf("render missing parts:\n%s", out)
	}
	if _, err := RunTable8(Table8Config{Corpus: quickCorpus(), Query: 77, Ps: []int{2}, TopK: 5}); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := RunTable8(Table8Config{Corpus: quickCorpus(), Query: 0, Ps: []int{200}, TopK: 5}); err == nil {
		t.Error("p > docs accepted")
	}
}

func TestRunFigure1Quick(t *testing.T) {
	cfg := Figure1Config{
		N: 12, P: 4, Lambdas: []float64{0.2, 0.8},
		Steps: 4, Repetitions: 2, Seed: 7, Parallel: true,
	}
	res, err := RunFigure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, worst := range []float64{row.WorstV, row.WorstE, row.WorstM} {
			if worst < 1-1e-9 || worst > 3+1e-9 {
				t.Fatalf("λ=%g: worst ratio %g outside [1, 3]", row.Lambda, worst)
			}
		}
	}
	if !strings.Contains(res.Render(), "FIGURE 1") {
		t.Error("render missing title")
	}
	if _, err := RunFigure1(Figure1Config{}); err == nil {
		t.Error("empty lambda grid accepted")
	}
}

func TestRunAppendix(t *testing.T) {
	res, err := RunAppendix(AppendixConfig{Rs: []int{4, 8, 12, 20}, Ell: 10})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, row := range res.Rows {
		if row.LSRatio > 2+1e-9 {
			t.Fatalf("r=%d: local search ratio %g exceeds 2", row.R, row.LSRatio)
		}
		if row.GreedyRatio < prev {
			t.Fatalf("r=%d: greedy ratio should grow with r (got %g after %g)", row.R, row.GreedyRatio, prev)
		}
		prev = row.GreedyRatio
		if i == len(res.Rows)-1 && row.GreedyRatio < 4 {
			t.Fatalf("greedy ratio should blow up; at r=%d only %g", row.R, row.GreedyRatio)
		}
	}
	if !strings.Contains(res.Render(), "APPENDIX") {
		t.Error("render missing title")
	}
	if _, err := RunAppendix(AppendixConfig{}); err == nil {
		t.Error("empty r grid accepted")
	}
	if _, _, err := BuildAppendixInstance(1, 10); err == nil {
		t.Error("r=1 accepted")
	}
	if _, _, err := BuildAppendixInstance(4, -1); err == nil {
		t.Error("negative ℓ accepted")
	}
}

func TestRenderHelpers(t *testing.T) {
	out := renderTable("T", []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.HasPrefix(out, "T\n") || !strings.Contains(out, "333") {
		t.Errorf("renderTable output:\n%s", out)
	}
	if f3(1.23456) != "1.235" {
		t.Error("f3 rounding wrong")
	}
	if ratio(1, 0) <= 1e308 {
		t.Error("ratio(1,0) should be +inf")
	}
	if ratio(0, 0) != 1 {
		t.Error("ratio(0,0) should be 1")
	}
	if msString(1500*time.Microsecond) != "1.50 ms" {
		t.Errorf("msString(1.5ms) = %q", msString(1500*time.Microsecond))
	}
	if msString(25*time.Millisecond) != "25 ms" {
		t.Errorf("msString(25ms) = %q", msString(25*time.Millisecond))
	}
	d, err := timed(func() error { return nil })
	if err != nil || d < 0 {
		t.Error("timed wrong")
	}
}
