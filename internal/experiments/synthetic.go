package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"maxsumdiv/internal/core"
	"maxsumdiv/internal/dataset"
	"maxsumdiv/internal/matroid"
)

// Table1Config parameterizes Tables 1 and 3 (synthetic, with exact OPT).
type Table1Config struct {
	// N is the universe size (paper: 50).
	N int
	// Ps are the cardinality constraints (paper: 3..7).
	Ps []int
	// Lambda is the trade-off (paper: 0.2 throughout Section 7.1).
	Lambda float64
	// Trials per parameter setting (paper: 5 for Table 1, 1 for Table 3).
	Trials int
	// Improved selects the Table 3 variants: Greedy A picks its best last
	// vertex, Greedy B starts from its best pair.
	Improved bool
	// Seed drives instance generation.
	Seed int64
}

// DefaultTable1Config mirrors the paper's Table 1.
func DefaultTable1Config() Table1Config {
	return Table1Config{N: 50, Ps: []int{3, 4, 5, 6, 7}, Lambda: 0.2, Trials: 5, Seed: 1}
}

// DefaultTable3Config mirrors the paper's Table 3 (improved variants, one
// trial).
func DefaultTable3Config() Table1Config {
	cfg := DefaultTable1Config()
	cfg.Trials = 1
	cfg.Improved = true
	cfg.Seed = 3
	return cfg
}

// Table1Row is one parameter setting of Table 1/3: averaged objective values
// and the paper's observed approximation factors AF_ALG = OPT-avg / ALG-avg.
type Table1Row struct {
	P       int
	OPT     float64
	GreedyA float64
	GreedyB float64
	AFA     float64 // OPT / GreedyA
	AFB     float64 // OPT / GreedyB
	RelAF   float64 // GreedyB / GreedyA (the paper's AF^GreedyB_GreedyA)
}

// Table1Result carries all rows of a Table 1/3 run.
type Table1Result struct {
	Config Table1Config
	Rows   []Table1Row
}

// RunTable1 regenerates Table 1 (or Table 3 with Improved set): for each p,
// average OPT, Greedy A and Greedy B objective values over Trials random
// instances and report observed approximation factors.
func RunTable1(cfg Table1Config) (*Table1Result, error) {
	if cfg.N <= 0 || len(cfg.Ps) == 0 || cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiments: Table1: bad config %+v", cfg)
	}
	res := &Table1Result{Config: cfg}
	for _, p := range cfg.Ps {
		if p > cfg.N {
			return nil, fmt.Errorf("experiments: Table1: p=%d exceeds N=%d", p, cfg.N)
		}
		var sumOpt, sumA, sumB float64
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*104729 + int64(p)))
			inst := dataset.Synthetic(cfg.N, rng)
			obj, err := inst.Objective(cfg.Lambda)
			if err != nil {
				return nil, err
			}
			var optsA, optsB []core.GreedyOption
			if cfg.Improved {
				optsA = append(optsA, core.WithBestLastVertex())
				optsB = append(optsB, core.WithBestPairStart())
			}
			a, err := core.GreedyA(obj, p, optsA...)
			if err != nil {
				return nil, err
			}
			b, err := core.GreedyB(obj, p, optsB...)
			if err != nil {
				return nil, err
			}
			opt, err := core.Exact(obj, p, &core.ExactOptions{Parallel: true})
			if err != nil {
				return nil, err
			}
			sumA += a.Value
			sumB += b.Value
			sumOpt += opt.Value
		}
		n := float64(cfg.Trials)
		row := Table1Row{
			P:       p,
			OPT:     sumOpt / n,
			GreedyA: sumA / n,
			GreedyB: sumB / n,
		}
		row.AFA = ratio(row.OPT, row.GreedyA)
		row.AFB = ratio(row.OPT, row.GreedyB)
		row.RelAF = ratio(row.GreedyB, row.GreedyA)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table1Result) Render() string {
	title := fmt.Sprintf("TABLE 1: Comparison of Greedy A and Greedy B (N = %d, λ = %g, %d trials)",
		r.Config.N, r.Config.Lambda, r.Config.Trials)
	if r.Config.Improved {
		title = fmt.Sprintf("TABLE 3: Comparison of Improved Greedy A and Improved Greedy B (N = %d, λ = %g)",
			r.Config.N, r.Config.Lambda)
	}
	headers := []string{"p", "OPT", "GreedyA", "GreedyB", "AF_GreedyA", "AF_GreedyB", "AF_B/A"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.P),
			f3(row.OPT), f3(row.GreedyA), f3(row.GreedyB),
			f3(row.AFA), f3(row.AFB), f3(row.RelAF),
		})
	}
	return renderTable(title, headers, rows)
}

// Table2Config parameterizes Table 2 (synthetic N=500, no OPT, with wall
// times and the time-bounded LS refinement).
type Table2Config struct {
	// N is the universe size (paper: 500).
	N int
	// Ps are cardinalities (paper: 5,10,…,75).
	Ps []int
	// Lambda is the trade-off (paper: 0.2).
	Lambda float64
	// Trials per setting (paper: 5).
	Trials int
	// LSBudgetFactor bounds local search at this multiple of Greedy B's
	// runtime (paper: 10).
	LSBudgetFactor int
	// Seed drives instance generation.
	Seed int64
}

// DefaultTable2Config mirrors the paper's Table 2.
func DefaultTable2Config() Table2Config {
	ps := make([]int, 0, 15)
	for p := 5; p <= 75; p += 5 {
		ps = append(ps, p)
	}
	return Table2Config{N: 500, Ps: ps, Lambda: 0.2, Trials: 5, LSBudgetFactor: 10, Seed: 2}
}

// QuickTable2Config is a reduced variant for unit tests and smoke benches.
func QuickTable2Config() Table2Config {
	return Table2Config{N: 120, Ps: []int{5, 10, 15}, Lambda: 0.2, Trials: 2, LSBudgetFactor: 10, Seed: 2}
}

// Table2Row is one parameter setting of Table 2/5.
type Table2Row struct {
	P         int
	GreedyA   float64
	GreedyB   float64
	LS        float64
	RelBA     float64 // GreedyB / GreedyA
	RelLSB    float64 // LS / GreedyB
	TimeA     time.Duration
	TimeB     time.Duration
	TimeRatio float64 // TimeA / TimeB
	LSSwaps   int
}

// Table2Result carries all rows of a Table 2 run.
type Table2Result struct {
	Config Table2Config
	Rows   []Table2Row
}

// RunTable2 regenerates Table 2: Greedy A vs Greedy B objective values and
// wall times at N=500 scale, plus the LS refinement (Greedy B followed by
// single-swap local search bounded at LSBudgetFactor × the greedy's time).
func RunTable2(cfg Table2Config) (*Table2Result, error) {
	if cfg.N <= 0 || len(cfg.Ps) == 0 || cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiments: Table2: bad config %+v", cfg)
	}
	if cfg.LSBudgetFactor <= 0 {
		cfg.LSBudgetFactor = 10
	}
	res := &Table2Result{Config: cfg}
	for _, p := range cfg.Ps {
		if p > cfg.N {
			return nil, fmt.Errorf("experiments: Table2: p=%d exceeds N=%d", p, cfg.N)
		}
		var sumA, sumB, sumLS float64
		var timeA, timeB time.Duration
		var swaps int
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*15485863 + int64(p)))
			inst := dataset.Synthetic(cfg.N, rng)
			obj, err := inst.Objective(cfg.Lambda)
			if err != nil {
				return nil, err
			}
			var a, b, ls *core.Solution
			da, err := timed(func() error { a, err = core.GreedyA(obj, p); return err })
			if err != nil {
				return nil, err
			}
			db, err := timed(func() error { b, err = core.GreedyB(obj, p); return err })
			if err != nil {
				return nil, err
			}
			uni, err := matroid.NewUniform(cfg.N, p)
			if err != nil {
				return nil, err
			}
			budget := time.Duration(cfg.LSBudgetFactor) * db
			if budget < time.Millisecond {
				budget = time.Millisecond
			}
			ls, err = core.LocalSearch(obj, uni, &core.LSOptions{Init: b.Members, TimeBudget: budget})
			if err != nil {
				return nil, err
			}
			sumA += a.Value
			sumB += b.Value
			sumLS += ls.Value
			timeA += da
			timeB += db
			swaps += ls.Swaps
		}
		n := float64(cfg.Trials)
		row := Table2Row{
			P:       p,
			GreedyA: sumA / n,
			GreedyB: sumB / n,
			LS:      sumLS / n,
			TimeA:   timeA / time.Duration(cfg.Trials),
			TimeB:   timeB / time.Duration(cfg.Trials),
			LSSwaps: swaps,
		}
		row.RelBA = ratio(row.GreedyB, row.GreedyA)
		row.RelLSB = ratio(row.LS, row.GreedyB)
		row.TimeRatio = ratio(float64(row.TimeA), float64(row.TimeB))
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table2Result) Render() string {
	title := fmt.Sprintf("TABLE 2: Comparison of Greedy A, Greedy B and LS (N = %d, λ = %g, %d trials)",
		r.Config.N, r.Config.Lambda, r.Config.Trials)
	headers := []string{"p", "GreedyA", "GreedyB", "LS", "AF_B/A", "AF_LS/B", "Time_A", "Time_B", "T_A/T_B"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.P),
			f3(row.GreedyA), f3(row.GreedyB), f3(row.LS),
			f3(row.RelBA), f3(row.RelLSB),
			msString(row.TimeA), msString(row.TimeB), f3(row.TimeRatio),
		})
	}
	return renderTable(title, headers, rows)
}
