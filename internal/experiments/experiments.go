// Package experiments regenerates every table and figure of the paper's
// Section 7 evaluation. Each experiment has a Config (defaults mirror the
// paper's parameters, with reduced "quick" variants for benchmarks), a Run
// function returning typed rows, and a Render method that prints a
// paper-style text table.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Table 1  Greedy A vs Greedy B vs OPT          synthetic N=50
//	Table 2  Greedy A vs Greedy B vs LS + times   synthetic N=500
//	Table 3  improved Greedy A vs improved B      synthetic N=50
//	Table 4  Greedy A vs B vs OPT                 LETOR-like top-50
//	Table 5  Greedy A vs B vs LS + times          LETOR-like top-370
//	Table 6  AFs averaged over 5 queries          LETOR-like top-50
//	Table 7  relative AFs + times over 5 queries  LETOR-like full lists
//	Table 8  documents returned (ids)             LETOR-like top-50
//	Figure 1 worst ratio under dynamic updates    synthetic
//	Appendix greedy failure under a partition matroid
package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// msString formats a duration in milliseconds, the paper's unit, switching
// to two decimals below 10ms so sub-millisecond algorithms stay readable.
func msString(d time.Duration) string {
	ms := float64(d) / float64(time.Millisecond)
	if ms < 10 {
		return fmt.Sprintf("%.2f ms", ms)
	}
	return fmt.Sprintf("%d ms", d.Milliseconds())
}

// ratio guards division for "observed approximation factor" columns.
func ratio(num, den float64) float64 {
	if den == 0 {
		if num == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return num / den
}

// renderTable lays out a fixed-width text table with a title row.
func renderTable(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for pad := len([]rune(cell)); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// f3 formats with 3 decimals (the paper's precision for values and AFs).
func f3(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.3f", v)
}

// timed measures the wall-clock duration of f.
func timed(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}
