package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"maxsumdiv/internal/core"
	"maxsumdiv/internal/dataset"
	"maxsumdiv/internal/matroid"
)

// LetorConfig parameterizes Tables 4–8 (LETOR-like document workloads).
type LetorConfig struct {
	// Corpus configures the LETOR-like generator (paper: 5 queries, ~370
	// docs each, 46 features).
	Corpus dataset.LETORConfig
	// Lambda is the trade-off (as in Section 7.1 we use 0.2).
	Lambda float64
	// TopK restricts each query to its k most relevant documents
	// (paper: 50 for Tables 4/6/8; 370 i.e. all docs for Tables 5/7).
	TopK int
	// Ps are the cardinality constraints.
	Ps []int
	// Queries lists which query ids to use (Tables 4/5/8 use one query;
	// Tables 6/7 average over all five).
	Queries []int
	// WithOPT computes exact optima (feasible for TopK ≤ ~50, p ≤ 7).
	WithOPT bool
	// LSBudgetFactor bounds LS at this multiple of Greedy B's time (10).
	LSBudgetFactor int
	// Improved uses the Table 3 improved greedy variants (not used by the
	// paper's LETOR tables but available for ablations).
	Improved bool
}

// DefaultTable4Config mirrors Table 4: one query, top-50, p=3..7, with OPT.
func DefaultTable4Config() LetorConfig {
	return LetorConfig{
		Corpus:  dataset.DefaultLETORConfig(),
		Lambda:  0.2,
		TopK:    50,
		Ps:      []int{3, 4, 5, 6, 7},
		Queries: []int{0},
		WithOPT: true,
	}
}

// DefaultTable5Config mirrors Table 5: one query, all ~370 docs,
// p=5,10,…,75, with times and LS.
func DefaultTable5Config() LetorConfig {
	ps := make([]int, 0, 15)
	for p := 5; p <= 75; p += 5 {
		ps = append(ps, p)
	}
	return LetorConfig{
		Corpus:         dataset.DefaultLETORConfig(),
		Lambda:         0.2,
		TopK:           370,
		Ps:             ps,
		Queries:        []int{0},
		LSBudgetFactor: 10,
	}
}

// DefaultTable6Config mirrors Table 6: five queries, top-50, with OPT,
// reporting averaged approximation factors.
func DefaultTable6Config() LetorConfig {
	cfg := DefaultTable4Config()
	cfg.Queries = []int{0, 1, 2, 3, 4}
	return cfg
}

// DefaultTable7Config mirrors Table 7: five queries, full lists, times + LS.
func DefaultTable7Config() LetorConfig {
	cfg := DefaultTable5Config()
	cfg.Queries = []int{0, 1, 2, 3, 4}
	return cfg
}

// LetorRow is one parameter setting of a LETOR table, averaged over queries.
type LetorRow struct {
	P         int
	OPT       float64 // 0 unless WithOPT
	GreedyA   float64
	GreedyB   float64
	LS        float64 // 0 unless LSBudgetFactor > 0
	AFA       float64 // OPT/GreedyA (WithOPT only)
	AFB       float64 // OPT/GreedyB (WithOPT only)
	RelBA     float64 // GreedyB/GreedyA
	RelLSB    float64 // LS/GreedyB (LS runs only)
	TimeA     time.Duration
	TimeB     time.Duration
	TimeRatio float64
}

// LetorResult carries the rows of a Table 4/5/6/7 run.
type LetorResult struct {
	Config LetorConfig
	Table  int // 4, 5, 6 or 7 — controls Render's layout
	Rows   []LetorRow
}

// RunLetor executes the shared Tables 4–7 pipeline over the configured
// queries and reports per-p averages.
func RunLetor(cfg LetorConfig, table int) (*LetorResult, error) {
	if len(cfg.Ps) == 0 || len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("experiments: letor: bad config %+v", cfg)
	}
	queries, err := dataset.LETORLike(cfg.Corpus)
	if err != nil {
		return nil, err
	}
	type perQuery struct {
		obj *core.Objective
		n   int
	}
	var objs []perQuery
	for _, qid := range cfg.Queries {
		if qid < 0 || qid >= len(queries) {
			return nil, fmt.Errorf("experiments: letor: query %d out of range [0,%d)", qid, len(queries))
		}
		docs := dataset.TopK(queries[qid], cfg.TopK)
		obj, err := dataset.DocObjective(docs, cfg.Lambda)
		if err != nil {
			return nil, err
		}
		objs = append(objs, perQuery{obj: obj, n: len(docs)})
	}

	res := &LetorResult{Config: cfg, Table: table}
	for _, p := range cfg.Ps {
		var row LetorRow
		row.P = p
		var sumOpt, sumA, sumB, sumLS float64
		var timeA, timeB time.Duration
		for _, q := range objs {
			if p > q.n {
				return nil, fmt.Errorf("experiments: letor: p=%d exceeds %d docs", p, q.n)
			}
			var optsA, optsB []core.GreedyOption
			if cfg.Improved {
				optsA = append(optsA, core.WithBestLastVertex())
				optsB = append(optsB, core.WithBestPairStart())
			}
			var a, b *core.Solution
			da, err := timed(func() error { var e error; a, e = core.GreedyA(q.obj, p, optsA...); return e })
			if err != nil {
				return nil, err
			}
			db, err := timed(func() error { var e error; b, e = core.GreedyB(q.obj, p, optsB...); return e })
			if err != nil {
				return nil, err
			}
			sumA += a.Value
			sumB += b.Value
			timeA += da
			timeB += db
			if cfg.LSBudgetFactor > 0 {
				uni, err := matroid.NewUniform(q.n, p)
				if err != nil {
					return nil, err
				}
				budget := time.Duration(cfg.LSBudgetFactor) * db
				if budget < time.Millisecond {
					budget = time.Millisecond
				}
				ls, err := core.LocalSearch(q.obj, uni, &core.LSOptions{Init: b.Members, TimeBudget: budget})
				if err != nil {
					return nil, err
				}
				sumLS += ls.Value
			}
			if cfg.WithOPT {
				opt, err := core.Exact(q.obj, p, &core.ExactOptions{Parallel: true})
				if err != nil {
					return nil, err
				}
				sumOpt += opt.Value
			}
		}
		nq := float64(len(objs))
		row.GreedyA = sumA / nq
		row.GreedyB = sumB / nq
		row.TimeA = timeA / time.Duration(len(objs))
		row.TimeB = timeB / time.Duration(len(objs))
		row.RelBA = ratio(row.GreedyB, row.GreedyA)
		row.TimeRatio = ratio(float64(row.TimeA), float64(row.TimeB))
		if cfg.LSBudgetFactor > 0 {
			row.LS = sumLS / nq
			row.RelLSB = ratio(row.LS, row.GreedyB)
		}
		if cfg.WithOPT {
			row.OPT = sumOpt / nq
			row.AFA = ratio(row.OPT, row.GreedyA)
			row.AFB = ratio(row.OPT, row.GreedyB)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunTable4 regenerates Table 4 (one query, top-50, with OPT).
func RunTable4(cfg LetorConfig) (*LetorResult, error) { return RunLetor(cfg, 4) }

// RunTable5 regenerates Table 5 (one query, full list, times + LS).
func RunTable5(cfg LetorConfig) (*LetorResult, error) { return RunLetor(cfg, 5) }

// RunTable6 regenerates Table 6 (five queries, top-50, averaged AFs).
func RunTable6(cfg LetorConfig) (*LetorResult, error) { return RunLetor(cfg, 6) }

// RunTable7 regenerates Table 7 (five queries, full lists, relative AFs and
// times).
func RunTable7(cfg LetorConfig) (*LetorResult, error) { return RunLetor(cfg, 7) }

// Render prints the table in the layout of the corresponding paper table.
func (r *LetorResult) Render() string {
	switch r.Table {
	case 4:
		headers := []string{"p", "OPT", "GreedyA", "GreedyB", "AF_GreedyA", "AF_GreedyB", "AF_B/A"}
		var rows [][]string
		for _, row := range r.Rows {
			rows = append(rows, []string{
				fmt.Sprintf("%d", row.P), f3(row.OPT), f3(row.GreedyA), f3(row.GreedyB),
				f3(row.AFA), f3(row.AFB), f3(row.RelBA),
			})
		}
		return renderTable(fmt.Sprintf("TABLE 4: Greedy A vs Greedy B vs OPT (LETOR-like, top %d docs, λ = %g)",
			r.Config.TopK, r.Config.Lambda), headers, rows)
	case 6:
		headers := []string{"p", "AF_GreedyA", "AF_GreedyB"}
		var rows [][]string
		for _, row := range r.Rows {
			rows = append(rows, []string{fmt.Sprintf("%d", row.P), f3(row.AFA), f3(row.AFB)})
		}
		return renderTable(fmt.Sprintf("TABLE 6: observed AFs averaged over %d queries (LETOR-like, top %d docs)",
			len(r.Config.Queries), r.Config.TopK), headers, rows)
	case 7:
		headers := []string{"p", "AF_B/A", "AF_LS/B", "Time_A", "Time_B", "T_A/T_B"}
		var rows [][]string
		for _, row := range r.Rows {
			rows = append(rows, []string{
				fmt.Sprintf("%d", row.P), f3(row.RelBA), f3(row.RelLSB),
				msString(row.TimeA), msString(row.TimeB), f3(row.TimeRatio),
			})
		}
		return renderTable(fmt.Sprintf("TABLE 7: relative AFs and times averaged over %d queries (LETOR-like, full lists)",
			len(r.Config.Queries)), headers, rows)
	default: // 5
		headers := []string{"p", "GreedyA", "GreedyB", "LS", "AF_B/A", "AF_LS/B", "Time_A", "Time_B", "T_A/T_B"}
		var rows [][]string
		for _, row := range r.Rows {
			rows = append(rows, []string{
				fmt.Sprintf("%d", row.P), f3(row.GreedyA), f3(row.GreedyB), f3(row.LS),
				f3(row.RelBA), f3(row.RelLSB),
				msString(row.TimeA), msString(row.TimeB), f3(row.TimeRatio),
			})
		}
		return renderTable(fmt.Sprintf("TABLE 5: Greedy A vs Greedy B vs LS (LETOR-like, %d docs, λ = %g)",
			r.Config.TopK, r.Config.Lambda), headers, rows)
	}
}

// Table8Config parameterizes Table 8 (the documents returned).
type Table8Config struct {
	Corpus dataset.LETORConfig
	Lambda float64
	TopK   int
	Ps     []int
	Query  int
}

// DefaultTable8Config mirrors Table 8: one query, top-50, p = 3..7.
func DefaultTable8Config() Table8Config {
	return Table8Config{Corpus: dataset.DefaultLETORConfig(), Lambda: 0.2, TopK: 50, Ps: []int{3, 4, 5, 6, 7}, Query: 0}
}

// Table8Block lists the document ids each method returned for one p.
type Table8Block struct {
	P       int
	GreedyA []int
	GreedyB []int
	OPT     []int
}

// Table8Result carries all blocks.
type Table8Result struct {
	Config Table8Config
	Blocks []Table8Block
}

// RunTable8 regenerates Table 8: the concrete document ids selected by
// Greedy A, Greedy B and OPT on the top-k document set.
func RunTable8(cfg Table8Config) (*Table8Result, error) {
	queries, err := dataset.LETORLike(cfg.Corpus)
	if err != nil {
		return nil, err
	}
	if cfg.Query < 0 || cfg.Query >= len(queries) {
		return nil, fmt.Errorf("experiments: Table8: query %d out of range", cfg.Query)
	}
	docs := dataset.TopK(queries[cfg.Query], cfg.TopK)
	obj, err := dataset.DocObjective(docs, cfg.Lambda)
	if err != nil {
		return nil, err
	}
	toDocIDs := func(members []int) []int {
		out := make([]int, len(members))
		for i, m := range members {
			out[i] = docs[m].ID
		}
		sort.Ints(out)
		return out
	}
	res := &Table8Result{Config: cfg}
	for _, p := range cfg.Ps {
		if p > len(docs) {
			return nil, fmt.Errorf("experiments: Table8: p=%d exceeds %d docs", p, len(docs))
		}
		a, err := core.GreedyA(obj, p)
		if err != nil {
			return nil, err
		}
		b, err := core.GreedyB(obj, p)
		if err != nil {
			return nil, err
		}
		opt, err := core.Exact(obj, p, &core.ExactOptions{Parallel: true})
		if err != nil {
			return nil, err
		}
		res.Blocks = append(res.Blocks, Table8Block{
			P:       p,
			GreedyA: toDocIDs(a.Members),
			GreedyB: toDocIDs(b.Members),
			OPT:     toDocIDs(opt.Members),
		})
	}
	return res, nil
}

// Render prints per-p blocks of returned document ids, as in the paper.
func (r *Table8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE 8: documents returned (LETOR-like, top %d docs, query %d)\n",
		r.Config.TopK, r.Config.Query)
	for _, blk := range r.Blocks {
		fmt.Fprintf(&b, "\nN=%d, p=%d\n", r.Config.TopK, blk.P)
		rows := make([][]string, blk.P)
		for i := 0; i < blk.P; i++ {
			rows[i] = []string{
				fmt.Sprintf("%d", blk.GreedyA[i]),
				fmt.Sprintf("%d", blk.GreedyB[i]),
				fmt.Sprintf("%d", blk.OPT[i]),
			}
		}
		b.WriteString(renderTable("", []string{"Greedy A", "Greedy B", "OPT"}, rows))
	}
	return b.String()
}

// Overlap reports |A ∩ B| for two id lists — used to quantify Table 8's
// "Greedy B differs from OPT on one document" observations.
func Overlap(a, b []int) int {
	set := make(map[int]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	n := 0
	for _, x := range b {
		if set[x] {
			n++
		}
	}
	return n
}
