package experiments

import (
	"fmt"

	"maxsumdiv/internal/core"
	"maxsumdiv/internal/matroid"
	"maxsumdiv/internal/metric"
	"maxsumdiv/internal/setfunc"
)

// AppendixConfig parameterizes the Appendix negative result: the two-block
// partition-matroid instance on which the Section 4 greedy has unbounded
// approximation ratio while local search keeps its factor 2.
type AppendixConfig struct {
	// Rs are the sizes of the C block to sweep (ratio grows with r).
	Rs []int
	// Ell is the paper's ℓ (the long distance / the weight of element a).
	Ell float64
}

// DefaultAppendixConfig sweeps r over a small grid with ℓ = 10.
func DefaultAppendixConfig() AppendixConfig {
	return AppendixConfig{Rs: []int{4, 8, 12, 16, 20}, Ell: 10}
}

// AppendixRow is one r setting.
type AppendixRow struct {
	R           int
	Greedy      float64
	LocalSearch float64
	OPT         float64
	GreedyRatio float64 // OPT / Greedy — grows linearly in r
	LSRatio     float64 // OPT / LocalSearch — stays ≤ 2
}

// AppendixResult carries the sweep.
type AppendixResult struct {
	Config AppendixConfig
	Rows   []AppendixRow
}

// BuildAppendixInstance constructs the paper's Appendix example: universe
// {a, b} ∪ C with |C| = r, partition matroid {a,b}↦cap 1, C↦cap r,
// q(a) = ℓ+ε, all other weights 0, d(b,·) = ℓ, all other distances ε, with
// ε = 1/C(r,2). Element 0 is a, element 1 is b.
func BuildAppendixInstance(r int, ell float64) (*core.Objective, *matroid.Partition, error) {
	if r < 2 {
		return nil, nil, fmt.Errorf("experiments: appendix needs r ≥ 2, got %d", r)
	}
	if ell <= 0 {
		return nil, nil, fmt.Errorf("experiments: appendix needs ℓ > 0, got %g", ell)
	}
	eps := 1.0 / float64(r*(r-1)/2)
	n := 2 + r
	w := make([]float64, n)
	w[0] = ell + eps
	mod, err := setfunc.NewModular(w)
	if err != nil {
		return nil, nil, err
	}
	d := metric.NewDense(n)
	d.Fill(func(i, j int) float64 {
		if i == 1 || j == 1 {
			return ell
		}
		return eps
	})
	obj, err := core.NewObjective(mod, 1, d)
	if err != nil {
		return nil, nil, err
	}
	partOf := make([]int, n)
	partOf[0], partOf[1] = 0, 0
	for i := 2; i < n; i++ {
		partOf[i] = 1
	}
	m, err := matroid.NewPartition(partOf, []int{1, r})
	if err != nil {
		return nil, nil, err
	}
	return obj, m, nil
}

// RunAppendix sweeps r and reports the greedy's deteriorating ratio against
// local search's stable one.
func RunAppendix(cfg AppendixConfig) (*AppendixResult, error) {
	if len(cfg.Rs) == 0 {
		return nil, fmt.Errorf("experiments: appendix: empty r grid")
	}
	res := &AppendixResult{Config: cfg}
	for _, r := range cfg.Rs {
		obj, m, err := BuildAppendixInstance(r, cfg.Ell)
		if err != nil {
			return nil, err
		}
		greedy, err := core.GreedyMatroid(obj, m)
		if err != nil {
			return nil, err
		}
		ls, err := core.LocalSearch(obj, m, nil)
		if err != nil {
			return nil, err
		}
		// The optimum is known analytically to be C ∪ {b}; verify with the
		// exact solver at small r, use the closed form beyond.
		var optVal float64
		if r <= 14 {
			opt, err := core.ExactMatroid(obj, m)
			if err != nil {
				return nil, err
			}
			optVal = opt.Value
		} else {
			members := make([]int, 0, r+1)
			members = append(members, 1)
			for i := 2; i < 2+r; i++ {
				members = append(members, i)
			}
			optVal = obj.Value(members)
		}
		row := AppendixRow{
			R:           r,
			Greedy:      greedy.Value,
			LocalSearch: ls.Value,
			OPT:         optVal,
			GreedyRatio: ratio(optVal, greedy.Value),
			LSRatio:     ratio(optVal, ls.Value),
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the sweep.
func (r *AppendixResult) Render() string {
	headers := []string{"r", "Greedy", "LocalSearch", "OPT", "OPT/Greedy", "OPT/LS"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.R),
			f3(row.Greedy), f3(row.LocalSearch), f3(row.OPT),
			f3(row.GreedyRatio), f3(row.LSRatio),
		})
	}
	title := fmt.Sprintf("APPENDIX: greedy failure under a partition matroid (ℓ = %g, ε = 1/C(r,2))", r.Config.Ell)
	return renderTable(title, headers, rows)
}
