package candidate

import (
	"math/rand"
	"sort"
	"testing"

	"maxsumdiv/internal/core"
	"maxsumdiv/internal/metric"
	"maxsumdiv/internal/setfunc"
)

// corpus draws a seeded random test corpus: unit-cube vectors and [0, 1)
// weights.
func corpus(seed int64, n, dim int) (vecs [][]float64, weights []float64) {
	rng := rand.New(rand.NewSource(seed))
	vecs = make([][]float64, n)
	weights = make([]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for k := range v {
			v[k] = 2*rng.Float64() - 1
		}
		vecs[i] = v
		weights[i] = rng.Float64()
	}
	return vecs, weights
}

func TestSelectStructure(t *testing.T) {
	vecs, weights := corpus(7, 2000, 12)
	p := Params{Target: 300, Seed: 1}
	got := Select(vecs, weights, 8, p)
	if len(got) != 300 {
		t.Fatalf("selected %d, want 300", len(got))
	}
	if !sort.IntsAreSorted(got) {
		t.Fatal("candidates not sorted")
	}
	seen := make(map[int]bool, len(got))
	for _, i := range got {
		if i < 0 || i >= len(vecs) {
			t.Fatalf("candidate %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("candidate %d duplicated", i)
		}
		seen[i] = true
	}
	// Deterministic: same corpus, params → same set.
	again := Select(vecs, weights, 8, p)
	if len(again) != len(got) {
		t.Fatalf("rerun selected %d, want %d", len(again), len(got))
	}
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("rerun diverged at %d: %d vs %d", i, got[i], again[i])
		}
	}
	// The globally heaviest quarter of the budget must always be present —
	// greedy's early picks live there.
	byWeight := make([]int, len(weights))
	for i := range byWeight {
		byWeight[i] = i
	}
	sort.Slice(byWeight, func(x, y int) bool { return weights[byWeight[x]] > weights[byWeight[y]] })
	for _, i := range byWeight[:p.Target/4] {
		if !seen[i] {
			t.Fatalf("top-weight item %d (w=%g) missing from candidates", i, weights[i])
		}
	}
}

func TestSelectWholeGroundSetWhenTargetCoversN(t *testing.T) {
	vecs, weights := corpus(9, 64, 8)
	got := Select(vecs, weights, 4, Params{Target: 64})
	if len(got) != 64 {
		t.Fatalf("selected %d, want all 64", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("identity expected, got[%d] = %d", i, v)
		}
	}
	// Target 0 applies the heuristic, still capped at n.
	if got := Select(vecs, weights, 4, Params{}); len(got) != 64 {
		t.Fatalf("default target selected %d, want 64", len(got))
	}
}

func TestDefaultTarget(t *testing.T) {
	for _, tc := range []struct{ k, n, want int }{
		{1, 100000, 512}, // floor
		{16, 100000, 1024},
		{100, 100000, 6400},
		{16, 700, 700}, // capped at n
	} {
		if got := DefaultTarget(tc.k, tc.n); got != tc.want {
			t.Fatalf("DefaultTarget(%d, %d) = %d, want %d", tc.k, tc.n, got, tc.want)
		}
	}
}

func TestSelectDegenerateVectors(t *testing.T) {
	// All-zero vectors collapse to one bucket: selection must still return
	// the full target, ordered by weight.
	n := 200
	vecs := make([][]float64, n)
	weights := make([]float64, n)
	for i := range vecs {
		vecs[i] = make([]float64, 4)
		weights[i] = float64(i)
	}
	got := Select(vecs, weights, 4, Params{Target: 50})
	if len(got) != 50 {
		t.Fatalf("selected %d, want 50", len(got))
	}
	for _, i := range got {
		if i < n-50 {
			t.Fatalf("selected %d but heavier items were skipped", i)
		}
	}
	// Nil weights: uniform, still full-size and deterministic.
	got = Select(vecs, nil, 4, Params{Target: 50})
	if len(got) != 50 {
		t.Fatalf("nil-weight selection %d, want 50", len(got))
	}
}

// greedyValue runs exact greedy over the given subset of the corpus (nil =
// whole corpus) and returns the achieved objective φ(S).
func greedyValue(t *testing.T, vecs [][]float64, weights []float64, subset []int, k int, lambda float64) float64 {
	t.Helper()
	sv, sw := vecs, weights
	if subset != nil {
		sv = make([][]float64, len(subset))
		sw = make([]float64, len(subset))
		for i, idx := range subset {
			sv[i] = vecs[idx]
			sw[i] = weights[idx]
		}
	}
	cos, err := metric.NewCosine(sv)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := setfunc.NewModular(sw)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := core.NewObjective(mod, lambda, cos)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(obj, core.Spec{Algo: core.AlgoGreedy, K: k})
	if err != nil {
		t.Fatal(err)
	}
	return sol.Value
}

// TestCandidateGreedyAccuracy is the satellite property test: on seeded
// corpora, greedy restricted to the candidate set must stay within a fixed
// factor (0.95) of exact-scan greedy's objective. The pairwise value of a
// selection is the same whether measured inside the subset or the full
// corpus, so comparing solver outputs directly is exact.
func TestCandidateGreedyAccuracy(t *testing.T) {
	const n, dim, lambda = 4096, 16, 0.5
	for _, seed := range []int64{3, 17, 91} {
		vecs, weights := corpus(seed, n, dim)
		for _, k := range []int{4, 16, 48} {
			exact := greedyValue(t, vecs, weights, nil, k, lambda)
			cands := Select(vecs, weights, k, Params{Seed: seed})
			if len(cands) >= n {
				t.Fatalf("seed %d k %d: filter degenerated to full scan (%d candidates)", seed, k, len(cands))
			}
			approx := greedyValue(t, vecs, weights, cands, k, lambda)
			if acc := Accuracy(approx, exact); acc < 0.95 {
				t.Fatalf("seed %d k %d: candidate greedy %.4f of exact (%g vs %g, %d candidates)",
					seed, k, acc, approx, exact, len(cands))
			}
		}
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy(95, 100); got != 0.95 {
		t.Fatalf("Accuracy(95, 100) = %g", got)
	}
	if got := Accuracy(0, 0); got != 1 {
		t.Fatalf("Accuracy(0, 0) = %g", got)
	}
}
