// Package candidate pre-filters a large ground set down to a candidate
// subset the solvers can scan in O(candidates·k) instead of O(n·k) — the
// stage that makes greedy and local search tractable at corpora far past
// the point where every item can be considered per pick.
//
// The filter is a random-projection sketch (sign-of-dot LSH): each item's
// vector is hashed to a b-bit signature by b seeded random hyperplanes, so
// items pointing the same way share a bucket and items pointing different
// ways land apart. Selection then takes the globally heaviest items (greedy
// needs the high-quality ones) and round-robins across buckets by
// descending weight (max-sum dispersion needs directionally spread ones).
// Both halves of the paper's objective φ(S) = f(S) + λ·Σ d(u,v) are thereby
// represented in the candidate set; the accuracy-vs-exact-scan probe in the
// bench suite measures how much of the exact objective the filtered scan
// retains.
package candidate

import (
	"math"
	"math/rand"
	"sort"
)

// maxSigBits caps the signature width; 2^16 buckets is plenty of directional
// resolution for any target the solvers ask for.
const maxSigBits = 16

// Params configures Select.
type Params struct {
	// Target is the desired candidate count; 0 applies DefaultTarget.
	// Targets ≥ n return the whole ground set (the filter never drops
	// below exact-scan when it wouldn't save anything).
	Target int
	// Seed fixes the random hyperplanes. The same (seed, dim) always draws
	// the same projections, so candidate sets are reproducible across
	// processes.
	Seed int64
}

// DefaultTarget is the candidate-count heuristic: enough candidates that
// greedy's k picks see a wide field (64 per pick), never fewer than 512 so
// small-k queries keep headroom, and never more than n.
func DefaultTarget(k, n int) int {
	t := 64 * k
	if t < 512 {
		t = 512
	}
	if t > n {
		t = n
	}
	return t
}

// Select returns a sorted slice of candidate indices into vecs, of size
// min(target, n). weights biases selection toward high-quality items; nil
// means uniform. Empty vectors hash to the zero signature (one bucket), so
// degenerate inputs degrade to weight-ordered selection rather than failing.
func Select(vecs [][]float64, weights []float64, k int, p Params) []int {
	n := len(vecs)
	target := p.Target
	if target <= 0 {
		target = DefaultTarget(k, n)
	}
	if target >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}

	dim := 0
	for _, v := range vecs {
		if len(v) > 0 {
			dim = len(v)
			break
		}
	}

	// Signature width: about 2·target buckets, so round-robin takes ~one
	// item per non-empty bucket per pass.
	bits := 1
	for (1<<bits) < 2*target && bits < maxSigBits {
		bits++
	}

	// Seeded Gaussian hyperplanes; sign of the projection is one signature
	// bit. One flat pass: n·bits·dim multiplies.
	rng := rand.New(rand.NewSource(p.Seed))
	planes := make([]float64, bits*dim)
	for i := range planes {
		planes[i] = rng.NormFloat64()
	}
	sigs := make([]uint32, n)
	for i, v := range vecs {
		var sig uint32
		for b := 0; b < bits; b++ {
			h := planes[b*dim : (b+1)*dim]
			var dot float64
			m := len(v)
			if m > dim {
				m = dim
			}
			for c := 0; c < m; c++ {
				dot += h[c] * v[c]
			}
			if dot > 0 {
				sig |= 1 << b
			}
		}
		sigs[i] = sig
	}

	// Bucket by signature, each bucket ordered by descending weight so the
	// round-robin always surfaces a bucket's best representative first.
	buckets := make(map[uint32][]int, target)
	for i := range vecs {
		buckets[sigs[i]] = append(buckets[sigs[i]], i)
	}
	heavier := func(a, b int) bool {
		if weights == nil {
			return a < b
		}
		wa, wb := weights[a], weights[b]
		if wa != wb {
			return wa > wb
		}
		return a < b // deterministic tie-break
	}
	keys := make([]uint32, 0, len(buckets))
	for sig, members := range buckets {
		keys = append(keys, sig)
		sort.Slice(members, func(x, y int) bool { return heavier(members[x], members[y]) })
	}
	sort.Slice(keys, func(x, y int) bool { return keys[x] < keys[y] })

	picked := make([]bool, n)
	out := make([]int, 0, target)
	take := func(i int) {
		if !picked[i] {
			picked[i] = true
			out = append(out, i)
		}
	}

	// A quarter of the budget goes to the globally heaviest items: greedy's
	// first picks are weight-driven, and a bucket-only selection could
	// starve a heavy item stuck in a crowded bucket.
	if weights != nil {
		byWeight := make([]int, n)
		for i := range byWeight {
			byWeight[i] = i
		}
		sort.Slice(byWeight, func(x, y int) bool { return heavier(byWeight[x], byWeight[y]) })
		for _, i := range byWeight[:target/4] {
			take(i)
		}
	}

	// Round-robin the buckets (heaviest remaining member each) until the
	// budget is spent: directional coverage for the dispersion term.
	cursor := make(map[uint32]int, len(buckets))
	for len(out) < target {
		advanced := false
		for _, sig := range keys {
			if len(out) >= target {
				break
			}
			members := buckets[sig]
			c := cursor[sig]
			for c < len(members) && picked[members[c]] {
				c++
			}
			if c < len(members) {
				take(members[c])
				cursor[sig] = c + 1
				advanced = true
			} else {
				cursor[sig] = c
			}
		}
		if !advanced {
			break
		}
	}
	sort.Ints(out)
	return out
}

// Accuracy is the bench probe's quality ratio: approx/exact clamped to
// [0, 1]-ish semantics (an exact objective of 0 with a matching approx
// counts as perfect). Shared here so the probe and the property tests agree
// on the definition.
func Accuracy(approx, exact float64) float64 {
	if exact == 0 {
		if approx == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return approx / exact
}
