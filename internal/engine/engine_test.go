package engine

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
)

// bruteArgMax is the reference fold: max score, ties to the lowest index.
func bruteArgMax(n int, score func(u int) (float64, int, bool)) Best {
	best := Best{Index: -1}
	for u := 0; u < n; u++ {
		v, aux, ok := score(u)
		if !ok {
			continue
		}
		if best.Index == -1 || v > best.Value {
			best = Best{Index: u, Aux: aux, Value: v}
		}
	}
	return best
}

func TestArgMaxMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(3000)
		scores := make([]float64, n)
		eligible := make([]bool, n)
		for i := range scores {
			// Coarse values force frequent ties.
			scores[i] = float64(rng.Intn(8))
			eligible[i] = rng.Intn(4) != 0
		}
		score := func(u int) (float64, int, bool) {
			return scores[u], u * 2, eligible[u]
		}
		want := bruteArgMax(n, score)
		for _, workers := range []int{1, 2, 3, 7, 16} {
			pool := New(workers)
			got := pool.ArgMaxPair(n, func(int) PairScorer { return score })
			if got != want {
				t.Fatalf("trial %d, workers=%d: got %+v, want %+v", trial, workers, got, want)
			}
		}
	}
}

func TestArgMaxTieBreaksToLowestIndex(t *testing.T) {
	n := 5000 // large enough to actually shard
	pool := New(8)
	got := pool.ArgMax(n, func(int) Scorer {
		return func(u int) (float64, bool) { return 1.0, true }
	})
	if got.Index != 0 || got.Value != 1.0 {
		t.Fatalf("all-equal scan picked %+v, want index 0", got)
	}
}

func TestArgMaxNoEligible(t *testing.T) {
	pool := New(4)
	got := pool.ArgMax(1000, func(int) Scorer {
		return func(u int) (float64, bool) { return 0, false }
	})
	if got.Index != -1 {
		t.Fatalf("got %+v, want Index -1", got)
	}
	if got := pool.ArgMax(0, nil); got.Index != -1 {
		t.Fatalf("empty scan: got %+v, want Index -1", got)
	}
}

func TestArgMaxNegativeScores(t *testing.T) {
	// A lone eligible candidate must win even with a very negative score.
	pool := New(4)
	got := pool.ArgMax(2000, func(int) Scorer {
		return func(u int) (float64, bool) {
			if u == 1234 {
				return -1e18, true
			}
			return 0, false
		}
	})
	if got.Index != 1234 {
		t.Fatalf("got %+v, want index 1234", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		pool := New(workers)
		n := 10_000
		marks := make([]int32, n)
		pool.For(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&marks[i], 1)
			}
		})
		for i, m := range marks {
			if m != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, m)
			}
		}
	}
	New(4).For(0, func(_, _, _ int) { t.Fatal("body called for n=0") })
}

func TestFactoryRunsOnCallerGoroutine(t *testing.T) {
	// The safety contract: factories may build unsynchronized scratch.
	// Verify one factory call per shard worker, with distinct ids.
	pool := New(4)
	var calls atomic.Int32
	seen := map[int]bool{}
	pool.ArgMax(4*minShard, func(worker int) Scorer {
		calls.Add(1)
		if seen[worker] { // safe: factory runs serially on this goroutine
			t.Errorf("worker id %d handed out twice", worker)
		}
		seen[worker] = true
		return func(u int) (float64, bool) { return 0, false }
	})
	if int(calls.Load()) != len(seen) || len(seen) == 0 {
		t.Fatalf("factory calls %d, distinct ids %d", calls.Load(), len(seen))
	}
}

func TestNilAndDefaultPools(t *testing.T) {
	var nilPool *Pool
	if w := nilPool.Workers(); w != 1 {
		t.Fatalf("nil pool workers = %d, want 1", w)
	}
	if !nilPool.Serial() {
		t.Fatal("nil pool should be serial")
	}
	got := nilPool.ArgMax(100, func(int) Scorer {
		return func(u int) (float64, bool) { return float64(u), true }
	})
	if got.Index != 99 {
		t.Fatalf("nil pool argmax picked %d, want 99", got.Index)
	}
	if Default().Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
	if New(-3).Workers() != Default().Workers() {
		t.Fatal("negative worker count should fall back to GOMAXPROCS")
	}
}

// TestPoolDo checks every task runs exactly once at every worker count,
// including nil and serial pools, and that concurrency stays bounded.
func TestPoolDo(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 5, 33} {
			var pool *Pool
			if workers > 1 {
				pool = New(workers)
			}
			counts := make([]atomic.Int32, n+1)
			var running, peak atomic.Int32
			pool.Do(n, func(i int) {
				r := running.Add(1)
				for {
					p := peak.Load()
					if r <= p || peak.CompareAndSwap(p, r) {
						break
					}
				}
				counts[i].Add(1)
				running.Add(-1)
			})
			for i := 0; i < n; i++ {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: task %d ran %d times", workers, n, i, got)
				}
			}
			if p := peak.Load(); int(p) > pool.Workers() {
				t.Fatalf("workers=%d n=%d: %d tasks ran concurrently", workers, n, p)
			}
		}
	}
}

// TestArgMaxCtxCancelsSmallScan pins the mid-scan cancellation contract at
// spans below cancelStride: the poll interval shrinks with the range
// (strideFor), so even a few-hundred-candidate scan with expensive scorers
// stops within a fraction of the range after cancel — not at the end.
func TestArgMaxCtxCancelsSmallScan(t *testing.T) {
	const n = 400
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var visited atomic.Int64
	New(1).ArgMaxCtx(ctx, n, func(int) Scorer {
		return func(u int) (float64, bool) {
			if visited.Add(1) == 10 {
				cancel()
			}
			return float64(u), true
		}
	})
	v := visited.Load()
	if v >= n {
		t.Fatalf("scan visited all %d candidates despite cancellation at 10", n)
	}
	if limit := int64(10 + strideFor(n) + 1); v > limit {
		t.Fatalf("scan visited %d candidates after cancel at 10, want ≤ %d (one small-scan stride)", v, limit)
	}
}
