// Package engine provides the parallel execution substrate shared by every
// solver in this module: a bounded worker pool that shards index scans
// across goroutines with deterministic, serial-identical results.
//
// The paper's algorithms all spend their time in argmax-over-candidates
// loops — the greedy marginal-potential scan of Section 4 (φ′_u(S) for all
// u ∉ S), the swap-neighborhood scan of the Section 5 local search
// (SwapGain(out, in) over all out ∈ S, in ∉ S), and the Section 6 oblivious
// update rule, which is the same swap scan. Each candidate's score depends
// only on the frozen pre-scan state, so the scan parallelizes embarrassingly;
// this package supplies the one fan-out/fan-in primitive they all share.
//
// # Determinism
//
// ArgMax and ArgMaxPair select the maximal score under a total order —
// higher value first, ties broken toward the lower candidate index — which
// is associative and commutative, so the result is independent of how the
// index range is sharded. A Pool with 1 worker runs the identical fold
// inline. Consequently parallel and serial runs of every solver built on
// this package return byte-identical solutions; see the determinism tests in
// internal/core.
//
// # Safety contract
//
// The factory passed to ArgMax/ArgMaxPair/For is invoked on the caller's
// goroutine, once per worker, before any scoring starts — so it may lazily
// build per-worker scratch (e.g. a private quality evaluator) without
// synchronization. The returned scorer is then called only from that
// worker's goroutine over a contiguous index shard. Scorers for different
// workers run concurrently and must not share mutable state.
package engine
