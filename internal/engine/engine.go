package engine

import (
	"context"
	"runtime"
	"sync"
)

// minShard is the smallest index range worth handing to its own goroutine.
// Scans below roughly this size run inline: the fork/join overhead would
// dwarf the work, and small scans (e.g. a stream window of 10) are the
// common case on hot paths.
const minShard = 192

// cancelStride is how many candidates a shard folds between cancellation
// checks. A non-blocking channel poll every stride keeps the per-candidate
// cost of cancellation support at a fraction of a nanosecond while bounding
// how far past a cancel a scan can run: one stride of scorer calls per
// worker.
const cancelStride = 1024

// strideFor returns the poll interval for a scan span: cancelStride for
// large ranges, and a fraction of the range for small ones so that scans
// shorter than a stride — small corpora, or large corpora split across
// many workers — still poll a few times mid-range. Candidate scorers can
// be arbitrarily expensive (a user Quality function), so "small range"
// does not imply "fast scan".
func strideFor(span int) int {
	if span < cancelStride {
		return span/4 + 1
	}
	return cancelStride
}

// Pool is a bounded set of scan workers. The zero value and the nil pool
// both behave as a serial (1-worker) pool, so callers can thread an optional
// *Pool through without nil checks.
//
// A Pool is stateless and may be shared freely across goroutines and reused
// across scans; "bounded" means a scan fans out to at most Workers()
// goroutines at a time.
type Pool struct {
	workers int
}

// New returns a pool running at most `workers` concurrent scan goroutines.
// workers ≤ 0 selects runtime.GOMAXPROCS(0), the hardware default.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Default returns the hardware-default pool (GOMAXPROCS workers).
func Default() *Pool { return New(0) }

// Workers returns the concurrency bound; a nil pool reports 1.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Serial reports whether scans on this pool run inline on the caller's
// goroutine.
func (p *Pool) Serial() bool { return p.Workers() == 1 }

// Best is the outcome of an argmax scan: the winning candidate index (-1
// when no candidate was eligible), its score, and the auxiliary value its
// scorer reported (0 for plain ArgMax).
type Best struct {
	Index int
	Aux   int
	Value float64
}

// Scorer rates one candidate: its score and whether it is eligible at all.
type Scorer func(u int) (score float64, ok bool)

// PairScorer rates one candidate and reports an auxiliary index alongside —
// e.g. for a swap scan, the best member to evict for this incoming
// candidate.
type PairScorer func(u int) (score float64, aux int, ok bool)

// ArgMax scans candidates u ∈ [0, n) and returns the eligible candidate
// with the highest score; ties break toward the lowest index. factory is
// called once per worker on the caller's goroutine (see the package safety
// contract).
//
// Serial scans (one shard) run inline without wrapping the scorer, so a
// caller that reuses its factory and scorer closures across rounds pays
// zero allocations per scan.
func (p *Pool) ArgMax(n int, factory func(worker int) Scorer) Best {
	return p.ArgMaxCtx(nil, n, factory)
}

// ArgMaxCtx is ArgMax with cooperative cancellation: every shard polls
// ctx.Done() once per cancelStride candidates and abandons its range when
// the context is cancelled. A cancelled scan returns an arbitrary partial
// Best — the caller is expected to check ctx.Err() and discard it. A nil
// ctx (or one that never cancels) adds one non-blocking channel poll per
// stride and nothing per candidate.
func (p *Pool) ArgMaxCtx(ctx context.Context, n int, factory func(worker int) Scorer) Best {
	if n <= 0 {
		return Best{Index: -1}
	}
	if p.shards(n) == 1 {
		score := factory(0)
		best := Best{Index: -1}
		done := doneOf(ctx)
		stride := strideFor(n)
		for u := 0; u < n; u++ {
			if done != nil && u%stride == stride-1 && cancelled(done) {
				return best
			}
			v, ok := score(u)
			if !ok {
				continue
			}
			if best.Index == -1 || v > best.Value {
				best = Best{Index: u, Value: v}
			}
		}
		return best
	}
	return p.ArgMaxPairCtx(ctx, n, func(worker int) PairScorer {
		score := factory(worker)
		return func(u int) (float64, int, bool) {
			v, ok := score(u)
			return v, 0, ok
		}
	})
}

// doneOf extracts the cancellation channel from an optional context. A nil
// channel (nil ctx, or contexts that can never cancel, like Background) is
// never ready, so scans stay on the cheap path.
func doneOf(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// cancelled polls a done channel without blocking.
func cancelled(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// bestScratch pools the per-scan shard-result slices so steady-state
// parallel scans reuse one allocation instead of making a fresh []Best per
// round. Slices are pooled via pointer to keep Put itself allocation-free.
var bestScratch = sync.Pool{New: func() any {
	s := make([]Best, 0, 64)
	return &s
}}

// ArgMaxPair is ArgMax for scorers that carry an auxiliary index. The
// selection order is total — (higher score, then lower candidate index) —
// so the result is identical for every worker count and shard layout.
func (p *Pool) ArgMaxPair(n int, factory func(worker int) PairScorer) Best {
	return p.ArgMaxPairCtx(nil, n, factory)
}

// ArgMaxPairCtx is ArgMaxPair with the cooperative cancellation of
// ArgMaxCtx.
func (p *Pool) ArgMaxPairCtx(ctx context.Context, n int, factory func(worker int) PairScorer) Best {
	if n <= 0 {
		return Best{Index: -1}
	}
	done := doneOf(ctx)
	shards := p.shards(n)
	if shards == 1 {
		return scanShard(factory(0), 0, n, done)
	}
	chunk := (n + shards - 1) / shards
	scratch := bestScratch.Get().(*[]Best)
	if cap(*scratch) < shards {
		*scratch = make([]Best, shards)
	}
	results := (*scratch)[:shards]
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		score := factory(w)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			results[w] = scanShard(score, lo, hi, done)
		}(w, lo, hi)
	}
	wg.Wait()
	best := Best{Index: -1}
	for _, r := range results {
		if r.Index == -1 {
			continue
		}
		// Strict > keeps the earlier shard (lower indices) on ties.
		if best.Index == -1 || r.Value > best.Value {
			best = r
		}
	}
	bestScratch.Put(scratch)
	return best
}

// scanShard folds one contiguous index range; strict > keeps the lowest
// index among equal scores. A ready done channel abandons the range at the
// next stride boundary.
func scanShard(score PairScorer, lo, hi int, done <-chan struct{}) Best {
	best := Best{Index: -1}
	stride := cancelStride
	if done != nil {
		stride = strideFor(hi - lo)
	}
	for u := lo; u < hi; u++ {
		if done != nil && (u-lo)%stride == stride-1 && cancelled(done) {
			return best
		}
		v, aux, ok := score(u)
		if !ok {
			continue
		}
		if best.Index == -1 || v > best.Value {
			best = Best{Index: u, Aux: aux, Value: v}
		}
	}
	return best
}

// For splits [0, n) into contiguous shards and runs body(worker, lo, hi)
// for each, in parallel across the pool's workers. body must write only to
// worker- or index-disjoint state. Shard boundaries depend only on n and
// the worker count, so output layouts are deterministic.
func (p *Pool) For(n int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	shards := p.shards(n)
	if shards == 1 {
		body(0, 0, n)
		return
	}
	chunk := (n + shards - 1) / shards
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// Do runs n independent coarse-grained tasks body(0) … body(n−1) with at
// most Workers() running concurrently. Unlike For, tasks are not coalesced
// by minShard: Do is for work items that are individually substantial — a
// per-shard flush in a serving layer, a per-repetition simulation — where
// even n = 2 deserves 2 goroutines. A serial pool runs the tasks inline in
// order.
func (p *Pool) Do(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w == 1 || n == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	if w > n {
		w = n
	}
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				body(i)
			}
		}()
	}
	wg.Wait()
}

// shards returns how many goroutines an n-candidate scan should use: the
// pool bound, capped so every shard holds at least minShard candidates.
func (p *Pool) shards(n int) int {
	w := p.Workers()
	if most := (n + minShard - 1) / minShard; w > most {
		w = most
	}
	if w < 1 {
		w = 1
	}
	return w
}
