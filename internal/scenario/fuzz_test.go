package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzDecodeSpec fuzzes the spec decoder: it must never panic, and any
// input it accepts must re-encode and re-decode to the same spec (the
// canonical-form property the golden files rely on).
func FuzzDecodeSpec(f *testing.F) {
	// Seed with the shipped scenarios plus a few adversarial shapes.
	if paths, err := filepath.Glob(filepath.Join(scenariosDir, "*.json")); err == nil {
		for _, p := range paths {
			if data, err := os.ReadFile(p); err == nil {
				f.Add(data)
			}
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","seed":-1,"dim":1,"streams":[{"name":"s","ops":5,"mix":[{"op":"query","weight":1}],"arrival":{"mode":"closed"}}]}`))
	f.Add([]byte(`{"duration":"-5s"}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`"steady-mixed"`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc bytes.Buffer
		if err := spec.Encode(&enc); err != nil {
			t.Fatalf("accepted spec failed to encode: %v", err)
		}
		back, err := DecodeSpec(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded spec failed to decode: %v\n%s", err, enc.String())
		}
		if !reflect.DeepEqual(spec, back) {
			t.Fatalf("decode→encode→decode changed the spec:\n%+v\n%+v", spec, back)
		}
	})
}
