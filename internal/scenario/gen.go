package scenario

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// opKind indexes the engine's op buckets.
type opKind int

const (
	opInsert opKind = iota
	opUpdate
	opDelete
	opQuery
	numOpKinds
)

func (k opKind) String() string {
	switch k {
	case opInsert:
		return OpInsert
	case opUpdate:
		return OpUpdate
	case opDelete:
		return OpDelete
	case opQuery:
		return OpQuery
	}
	return fmt.Sprintf("opKind(%d)", int(k))
}

// genOp is one generated operation, fixed before execution: kind, payload,
// and (open loop) scheduled arrival offset are all decided by the seeded
// generator, never by execution timing.
type genOp struct {
	index  int
	kind   opKind
	at     time.Duration // scheduled arrival offset from run start (open loop)
	item   Item          // insert/update payload
	target string        // delete victim
	query  QueryParams
	// dependsOn is the op index of the target item's last write (-1 =
	// none): execution blocks until that op completes, so a generated
	// delete can never reach the server before the insert it depends on,
	// however execution interleaves.
	dependsOn int
}

// genItem tracks one live item the generator created (or adopted from the
// seeded corpus). lastTouch is the op index that last wrote it; an item
// only becomes an update/delete target once lastTouch is at least the
// settle horizon (the stream's slot count) behind the current index, which
// makes the dependency almost always already satisfied at execution time —
// the engine's per-op dependency barrier handles the slow-op stragglers.
type genItem struct {
	id        string
	lastTouch int
}

// generator produces one stream's deterministic op sequence: every op's
// kind, payload, target, and scheduled arrival is a pure function of
// (spec, seed), independent of execution timing. Workers drive it under a
// mutex, claiming ops in index order.
type generator struct {
	spec     *StreamSpec
	stream   int
	dim      int
	rng      *rand.Rand
	zipf     *rand.Zipf
	table    *Table[opKind]
	settle   int
	budget   time.Duration // generation stops once arrivals pass this (0 = unbounded)
	arrival  arrivalClock
	open     bool
	next     int // next op index
	seq      int // insert counter (feeds {seq})
	queries  int // query counter (feeds λ rotation)
	live     []genItem
	inserted int // live inserts counted against MaxItems
	done     bool
}

// zipfIMax bounds the Zipf rank draw; ranks past the live-set size clamp to
// the oldest item.
const zipfIMax = 1 << 20

func newGenerator(spec *Spec, streamIdx int, budget time.Duration) (*generator, error) {
	st := &spec.Streams[streamIdx]
	entries := make([]Weighted[opKind], 0, len(st.Mix))
	for _, ow := range st.Mix {
		var k opKind
		switch ow.Op {
		case OpInsert:
			k = opInsert
		case OpUpdate:
			k = opUpdate
		case OpDelete:
			k = opDelete
		case OpQuery:
			k = opQuery
		}
		entries = append(entries, Weighted[opKind]{Item: k, Weight: ow.Weight})
	}
	table, err := NewTable(entries...)
	if err != nil {
		return nil, err
	}
	// Offset the stream seed so concurrent streams draw distinct sequences
	// from one spec seed; the prime stride mirrors the old loadgen worker
	// seeding.
	rng := rand.New(rand.NewSource(spec.Seed + int64(streamIdx)*7919))
	g := &generator{
		spec:   st,
		stream: streamIdx,
		dim:    spec.Dim,
		rng:    rng,
		table:  table,
		settle: streamSlots(st),
		budget: budget,
		open:   st.Arrival.Mode == ArrivalOpen,
	}
	if st.Keys.Dist == KeysZipf {
		s := st.Keys.S
		if s == 0 {
			s = 1.2
		}
		g.zipf = rand.NewZipf(rng, s, 1, zipfIMax)
	}
	if g.open {
		g.arrival = newArrivalClock(st.Arrival)
		// A bounded ramp is its own duration budget; using it keeps
		// progress() meaningful for ramp-only specs (flash-crowd).
		if g.budget == 0 && len(st.Arrival.Ramp) > 0 {
			for _, stg := range st.Arrival.Ramp {
				g.budget += stg.For.Duration
			}
		}
	}
	return g, nil
}

// streamSlots is a stream's maximum concurrency: closed-loop workers or the
// open-loop in-flight bound.
func streamSlots(st *StreamSpec) int {
	if st.Arrival.Mode == ArrivalOpen {
		if st.Arrival.MaxInFlight > 0 {
			return st.Arrival.MaxInFlight
		}
		return 64
	}
	if st.Arrival.Workers > 0 {
		return st.Arrival.Workers
	}
	return 1
}

// adopt registers pre-seeded corpus ids as immediately eligible churn
// targets.
func (g *generator) adopt(ids []string) {
	for _, id := range ids {
		g.live = append(g.live, genItem{id: id, lastTouch: -g.settle})
	}
}

// generate produces the next op, or ok = false when the stream is
// exhausted (op cap reached, or the next open-loop arrival would pass the
// duration budget). Callers must serialize calls (the engine holds a
// mutex); determinism of the sequence follows from the single seeded rng.
func (g *generator) generate() (genOp, bool) {
	if g.done {
		return genOp{}, false
	}
	if g.spec.Ops > 0 && g.next >= g.spec.Ops {
		g.done = true
		return genOp{}, false
	}
	op := genOp{index: g.next, dependsOn: -1}
	if g.open {
		at, ok := g.arrival.next()
		if !ok || (g.budget > 0 && at > g.budget) {
			g.done = true
			return genOp{}, false
		}
		op.at = at
	}
	g.next++

	// Draws degrade deterministically when their target pool is empty:
	// update/delete of nothing becomes an insert, and an insert past
	// MaxItems becomes a query — so every claimed index still runs an op.
	kind := g.table.Pick(g.rng)
	target := -1
	if kind == opUpdate || kind == opDelete {
		if target = g.pickTarget(kind, op.index); target < 0 {
			kind = opInsert
		}
	}
	if kind == opInsert && g.spec.MaxItems > 0 && g.inserted >= g.spec.MaxItems {
		kind = opQuery
	}

	op.kind = kind
	switch kind {
	case opInsert:
		op.item = g.newItem(op.index)
	case opUpdate:
		it := &g.live[target]
		op.dependsOn = it.lastTouch
		it.lastTouch = op.index
		op.item = Item{ID: it.id, Weight: g.itemWeight(), Vector: g.vector()}
	case opDelete:
		op.dependsOn = g.live[target].lastTouch
		op.target = g.live[target].id
		g.live = append(g.live[:target], g.live[target+1:]...)
	case opQuery:
		op.query = g.queryParams()
	}
	return op, true
}

func (g *generator) newItem(index int) Item {
	id := expandTemplate(g.spec.Items.IDTemplate, g.stream, g.seq)
	g.seq++
	g.inserted++
	g.live = append(g.live, genItem{id: id, lastTouch: index})
	return Item{ID: id, Weight: g.itemWeight(), Vector: g.vector()}
}

func (g *generator) itemWeight() float64 {
	lo, hi := g.spec.Items.WeightMin, g.spec.Items.WeightMax
	if hi == 0 {
		hi = 1
	}
	return lo + g.rng.Float64()*(hi-lo)
}

func (g *generator) vector() []float64 {
	vec := make([]float64, g.dim)
	for i := range vec {
		vec[i] = g.rng.Float64()
	}
	return vec
}

func (g *generator) queryParams() QueryParams {
	q := QueryParams{
		K:         g.spec.Query.K,
		Algorithm: g.spec.Query.Algorithm,
		Scope:     g.spec.Query.Scope,
	}
	if q.K == 0 {
		q.K = 10
	}
	if len(g.spec.Query.Lambdas) > 0 {
		l := g.spec.Query.Lambdas[g.queries%len(g.spec.Query.Lambdas)]
		q.Lambda = &l
	}
	g.queries++
	return q
}

// progress is the run fraction in [0, 1] the flash-crowd ramp keys off:
// scheduled time over the duration budget when one exists, claimed ops over
// the op cap otherwise.
func (g *generator) progress(op genOp) float64 {
	if g.open && g.budget > 0 {
		return math.Min(1, float64(op.at)/float64(g.budget))
	}
	if g.spec.Ops > 0 {
		return math.Min(1, float64(op.index)/float64(g.spec.Ops))
	}
	return 0.5
}

// pickTarget returns the live-set index an update/delete should hit, or -1
// when no live item is eligible. The preferred index comes from the churn
// pattern (deletes) or key distribution; if that item is too recently
// touched (within the settle horizon), the walk degrades toward older items
// first, then newer.
func (g *generator) pickTarget(kind opKind, index int) int {
	n := len(g.live)
	if n == 0 {
		return -1
	}
	var pref int
	if kind == opDelete {
		switch g.spec.Churn.Pattern {
		case ChurnDeleteRecent:
			pref = n - 1
		case ChurnSlidingWindow:
			if n <= g.spec.Churn.Window {
				return -1
			}
			pref = 0
		default: // ChurnSteady: the key distribution picks
			pref = g.keyIndex(index)
		}
	} else {
		pref = g.keyIndex(index)
	}
	eligible := func(i int) bool { return g.live[i].lastTouch <= index-g.settle }
	for i := pref; i >= 0; i-- {
		if eligible(i) {
			return i
		}
	}
	for i := pref + 1; i < n; i++ {
		if eligible(i) {
			return i
		}
	}
	return -1
}

// keyIndex draws a preferred live-set index from the stream's key
// distribution. The live slice is insertion-ordered, so index n-1 is the
// newest item.
func (g *generator) keyIndex(index int) int {
	n := len(g.live)
	switch g.spec.Keys.Dist {
	case KeysZipf:
		rank := int(g.zipf.Uint64()) // 0 = hottest
		if rank >= n {
			rank = n - 1
		}
		return n - 1 - rank
	case KeysFlashCrowd:
		hot := g.spec.Keys.HotSet
		if hot <= 0 {
			hot = 16
		}
		if hot > n {
			hot = n
		}
		// The crowd builds: hot-set hit probability ramps 10% → 90% over
		// the run.
		frac := g.progress(genOp{index: index, at: g.arrival.off})
		p := 0.1 + 0.8*frac
		if g.rng.Float64() < p {
			return n - hot + g.rng.Intn(hot)
		}
		return g.rng.Intn(n)
	default:
		return g.rng.Intn(n)
	}
}

// expandTemplate fills an id template's {stream} and {seq} placeholders.
func expandTemplate(tpl string, stream, seq int) string {
	if tpl == "" {
		tpl = "{stream}-{seq}"
	}
	tpl = strings.ReplaceAll(tpl, "{stream}", strconv.Itoa(stream))
	return strings.ReplaceAll(tpl, "{seq}", strconv.Itoa(seq))
}

// arrivalClock integrates a piecewise-constant rate profile into scheduled
// arrival offsets.
type arrivalClock struct {
	stages []RampStage
	stage  int
	off    time.Duration // last scheduled arrival
	end    time.Duration // current stage's cumulative end (0 = unbounded)
}

func newArrivalClock(a ArrivalSpec) arrivalClock {
	stages := a.Ramp
	if len(stages) == 0 {
		stages = []RampStage{{Rate: a.Rate}} // For 0 = unbounded steady rate
	}
	c := arrivalClock{stages: stages}
	c.end = stages[0].For.Duration
	return c
}

// next returns the next arrival offset, or ok = false when a bounded ramp
// is exhausted.
func (c *arrivalClock) next() (time.Duration, bool) {
	for {
		st := c.stages[c.stage]
		dt := time.Duration(float64(time.Second) / st.Rate)
		at := c.off + dt
		if st.For.Duration == 0 || at <= c.end {
			c.off = at
			return at, true
		}
		// Stage exhausted: jump to its boundary and continue in the next.
		if c.stage == len(c.stages)-1 {
			return 0, false
		}
		c.off = c.end
		c.stage++
		c.end += c.stages[c.stage].For.Duration
	}
}

// vecHash fingerprints a vector for the replay op log.
func vecHash(vec []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range vec {
		bits := math.Float64bits(x)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}
