package scenario

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time so the open-loop scheduler can be driven by a
// virtual clock in tests: coordinated-omission behavior (queued time
// counting against latency) is about the relationship between scheduled
// arrival times and completion times, which a virtual clock makes exactly
// reproducible.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// SleepUntil blocks until t (no-op if t has passed) or until ctx is
	// done, returning ctx.Err() in the latter case.
	SleepUntil(ctx context.Context, t time.Time) error
}

// realClock is the wall clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) SleepUntil(ctx context.Context, t time.Time) error {
	d := time.Until(t)
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// VirtualClock is a deterministic clock for tests: SleepUntil advances
// virtual time instantly instead of blocking, and Advance models work that
// consumes time (a stalled server stub calls it in place of doing real
// work). With a single executing goroutine (workers = 1 or max_in_flight =
// 1) every run under a VirtualClock is exactly reproducible; with more, the
// per-goroutine advances interleave and the clock stays monotone but the
// schedule is no longer meaningful.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock starts a virtual clock at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// SleepUntil advances virtual time to t (never backwards) and returns
// immediately.
func (c *VirtualClock) SleepUntil(ctx context.Context, t time.Time) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
	}
	c.mu.Unlock()
	return nil
}

// Advance moves virtual time forward by d: the virtual cost of one unit of
// simulated work.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
