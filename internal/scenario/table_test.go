package scenario

import (
	"math/rand"
	"testing"
)

// TestTableChiSquare draws 100k samples per mix and runs a chi-square
// goodness-of-fit test against the expected weight proportions. The 0.999
// critical values keep the false-failure probability around 1e-3 per mix —
// and the rng is seeded, so a pass is reproducible anyway.
func TestTableChiSquare(t *testing.T) {
	// χ²₀.₉₉₉ critical values by degrees of freedom.
	crit := map[int]float64{1: 10.83, 2: 13.82, 3: 16.27, 4: 18.47}
	const draws = 100_000
	mixes := [][]int{
		{55, 10, 10, 25}, // steady-mixed
		{8, 12, 5, 75},   // zipf-read-heavy
		{60, 10, 30},     // the issue's example mix
		{45, 45, 10},     // adversarial-churn
		{1, 1},           // coin flip
		{1, 999},         // heavily skewed
	}
	for _, weights := range mixes {
		entries := make([]Weighted[int], len(weights))
		for i, w := range weights {
			entries[i] = Weighted[int]{Item: i, Weight: w}
		}
		table, err := NewTable(entries...)
		if err != nil {
			t.Fatalf("NewTable(%v): %v", weights, err)
		}
		rng := rand.New(rand.NewSource(42))
		counts := make([]int, len(weights))
		for i := 0; i < draws; i++ {
			counts[table.Pick(rng)]++
		}
		chi2 := 0.0
		for i, w := range weights {
			expected := float64(draws) * float64(w) / float64(table.Total())
			d := float64(counts[i]) - expected
			chi2 += d * d / expected
		}
		df := len(weights) - 1
		if chi2 > crit[df] {
			t.Errorf("mix %v: chi-square %.2f exceeds critical %.2f (df=%d), counts %v",
				weights, chi2, crit[df], df, counts)
		}
	}
}

// TestTableZeroWeightNeverDrawn verifies a zero-weight entry owns an empty
// interval: 100k draws must never select it, wherever it sits in the table.
func TestTableZeroWeightNeverDrawn(t *testing.T) {
	layouts := [][]int{
		{0, 50, 50}, // leading zero
		{50, 0, 50}, // interior zero
		{50, 50, 0}, // trailing zero
	}
	for _, weights := range layouts {
		entries := make([]Weighted[int], len(weights))
		for i, w := range weights {
			entries[i] = Weighted[int]{Item: i, Weight: w}
		}
		table, err := NewTable(entries...)
		if err != nil {
			t.Fatalf("NewTable(%v): %v", weights, err)
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 100_000; i++ {
			got := table.Pick(rng)
			if weights[got] == 0 {
				t.Fatalf("layout %v: drew zero-weight entry %d", weights, got)
			}
		}
	}
}

func TestTableSingleEntry(t *testing.T) {
	table, err := NewTable(Weighted[string]{Item: "only", Weight: 3})
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if got := table.Pick(rng); got != "only" {
			t.Fatalf("single-entry table drew %q", got)
		}
	}
	if table.Total() != 3 {
		t.Errorf("Total() = %d, want 3", table.Total())
	}
}

func TestTableErrors(t *testing.T) {
	if _, err := NewTable(Weighted[int]{Item: 1, Weight: 0}, Weighted[int]{Item: 2, Weight: 0}); err == nil {
		t.Error("all-zero table did not error")
	}
	if _, err := NewTable[int](); err == nil {
		t.Error("empty table did not error")
	}
	if _, err := NewTable(Weighted[int]{Item: 1, Weight: -1}, Weighted[int]{Item: 2, Weight: 5}); err == nil {
		t.Error("negative weight did not error")
	}
}
