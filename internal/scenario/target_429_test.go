package scenario

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// sheddingHandler answers 429 + Retry-After to the first n mutations, then
// behaves like a healthy (if vacuous) server.
type sheddingHandler struct {
	remaining atomic.Int64
}

func (s *sheddingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && s.remaining.Add(-1) >= 0 {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintln(w, `{"error":"mutations shed"}`)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, `{"accepted":1,"pending":0}`)
}

func TestHandlerTargetRetries429(t *testing.T) {
	h := &sheddingHandler{}
	h.remaining.Store(2)
	target := NewHandlerTarget(h)
	if err := target.Insert(context.Background(), []Item{{ID: "a", Weight: 1}}); err != nil {
		t.Fatalf("insert after shedding: %v", err)
	}
	if got := target.Retried429(); got != 2 {
		t.Fatalf("retried %d, want 2", got)
	}
}

func TestHandlerTarget429Bounded(t *testing.T) {
	h := &sheddingHandler{}
	h.remaining.Store(1 << 30) // sheds forever
	target := NewHandlerTarget(h)
	err := target.Delete(context.Background(), "a")
	if err == nil {
		t.Fatal("unbounded retry: delete succeeded against a permanently shedding server")
	}
	if got := target.Retried429(); got != max429Retries {
		t.Fatalf("retried %d, want %d", got, max429Retries)
	}
}

func TestHTTPTargetRetries429(t *testing.T) {
	h := &sheddingHandler{}
	h.remaining.Store(1)
	ts := httptest.NewServer(h)
	defer ts.Close()
	target := NewHTTPTarget(ts.URL, nil)
	if err := target.Insert(context.Background(), []Item{{ID: "a", Weight: 1}}); err != nil {
		t.Fatalf("insert after shedding: %v", err)
	}
	if got := target.Retried429(); got != 1 {
		t.Fatalf("retried %d, want 1", got)
	}
}

func TestRetryAfterWait(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", default429Wait},
		{"0", default429Wait},
		{"garbage", default429Wait},
		{"1", time.Second},
		{"600", max429Wait},
	}
	for _, c := range cases {
		if got := retryAfterWait(c.header); got != c.want {
			t.Fatalf("retryAfterWait(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}
