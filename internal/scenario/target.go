package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"

	"maxsumdiv/internal/server"
)

// Item is one corpus item a scenario inserts or updates.
type Item struct {
	ID     string
	Weight float64
	Vector []float64
}

// QueryParams parameterizes one diversify query.
type QueryParams struct {
	K         int
	Algorithm string
	Scope     string
	Lambda    *float64
}

// QueryResult is what the invariant checker needs from a query reply.
type QueryResult struct {
	IDs   []string
	Value float64
	// N is the candidate-pool size the server reports for the query.
	N int
}

// Target is the system under load. Implementations must be safe for
// concurrent use; every method returns an error for transport failures and
// non-2xx replies alike.
type Target interface {
	Insert(ctx context.Context, items []Item) error
	Delete(ctx context.Context, id string) error
	Query(ctx context.Context, q QueryParams) (QueryResult, error)
}

// HTTPTarget drives a serve instance over real HTTP.
type HTTPTarget struct {
	BaseURL string
	Client  *http.Client
}

// NewHTTPTarget wires a base URL and client (nil = http.DefaultClient).
func NewHTTPTarget(baseURL string, client *http.Client) *HTTPTarget {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPTarget{BaseURL: baseURL, Client: client}
}

func (t *HTTPTarget) Insert(ctx context.Context, items []Item) error {
	body, err := marshalItems(items)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.BaseURL+"/items", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.Client.Do(req)
	if err != nil {
		return err
	}
	defer drainBody(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /items: status %d", resp.StatusCode)
	}
	return nil
}

func (t *HTTPTarget) Delete(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, t.BaseURL+"/items/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := t.Client.Do(req)
	if err != nil {
		return err
	}
	defer drainBody(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("DELETE /items/%s: status %d", id, resp.StatusCode)
	}
	return nil
}

func (t *HTTPTarget) Query(ctx context.Context, q QueryParams) (QueryResult, error) {
	body, err := marshalQuery(q)
	if err != nil {
		return QueryResult{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.BaseURL+"/diversify", bytes.NewReader(body))
	if err != nil {
		return QueryResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.Client.Do(req)
	if err != nil {
		return QueryResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		drainBody(resp)
		return QueryResult{}, fmt.Errorf("POST /diversify: status %d", resp.StatusCode)
	}
	return decodeQueryResult(resp.Body)
}

// HandlerTarget drives an http.Handler in process — no sockets, no
// network stack. It is how scenarios run against an in-process server in
// tests, CI smoke runs, and bench probes.
type HandlerTarget struct {
	h http.Handler
}

// NewHandlerTarget wraps a handler (typically server.New(...).Handler()).
func NewHandlerTarget(h http.Handler) *HandlerTarget { return &HandlerTarget{h: h} }

func (t *HandlerTarget) roundTrip(ctx context.Context, method, path string, body []byte) (*httptest.ResponseRecorder, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd).WithContext(ctx)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("%s %s: status %d: %s", method, path, rec.Code, rec.Body.String())
	}
	return rec, nil
}

func (t *HandlerTarget) Insert(ctx context.Context, items []Item) error {
	body, err := marshalItems(items)
	if err != nil {
		return err
	}
	_, err = t.roundTrip(ctx, http.MethodPost, "/items", body)
	return err
}

func (t *HandlerTarget) Delete(ctx context.Context, id string) error {
	_, err := t.roundTrip(ctx, http.MethodDelete, "/items/"+id, nil)
	return err
}

func (t *HandlerTarget) Query(ctx context.Context, q QueryParams) (QueryResult, error) {
	body, err := marshalQuery(q)
	if err != nil {
		return QueryResult{}, err
	}
	rec, err := t.roundTrip(ctx, http.MethodPost, "/diversify", body)
	if err != nil {
		return QueryResult{}, err
	}
	return decodeQueryResult(rec.Body)
}

func marshalItems(items []Item) ([]byte, error) {
	payload := make([]server.ItemPayload, len(items))
	for i, it := range items {
		payload[i] = server.ItemPayload{ID: it.ID, Weight: it.Weight, Vector: it.Vector}
	}
	if len(payload) == 1 {
		return json.Marshal(payload[0])
	}
	return json.Marshal(payload)
}

func marshalQuery(q QueryParams) ([]byte, error) {
	return json.Marshal(server.DiversifyRequest{
		K: q.K, Algorithm: q.Algorithm, Scope: q.Scope, Lambda: q.Lambda,
	})
}

func decodeQueryResult(r io.Reader) (QueryResult, error) {
	var resp server.DiversifyResponse
	if err := json.NewDecoder(r).Decode(&resp); err != nil {
		return QueryResult{}, fmt.Errorf("decode /diversify response: %w", err)
	}
	out := QueryResult{Value: resp.Value, N: resp.N, IDs: make([]string, len(resp.Items))}
	for i, it := range resp.Items {
		out.IDs[i] = it.ID
	}
	return out, nil
}

func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
