package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"time"

	"maxsumdiv/internal/server"
)

// Backpressure (429 + Retry-After) handling for mutations: a shed mutation
// is the server protecting itself, not a failure, so targets honor the
// header with a bounded number of retries instead of erroring. The waits
// are capped so a hostile/buggy Retry-After cannot stall a load run.
const (
	max429Retries  = 3
	default429Wait = 50 * time.Millisecond
	max429Wait     = 2 * time.Second
)

// retryAfterWait maps a Retry-After header onto a bounded wait. Only the
// delay-seconds form is honored (HTTP dates are overkill for a load tool);
// absent or unparsable headers get the default backoff.
func retryAfterWait(header string) time.Duration {
	secs, err := strconv.Atoi(header)
	if err != nil || secs <= 0 {
		return default429Wait
	}
	d := time.Duration(secs) * time.Second
	if d > max429Wait {
		return max429Wait
	}
	return d
}

// sleepRetry waits out one 429 backoff, honoring cancellation.
func sleepRetry(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Item is one corpus item a scenario inserts or updates.
type Item struct {
	ID     string
	Weight float64
	Vector []float64
}

// QueryParams parameterizes one diversify query.
type QueryParams struct {
	K         int
	Algorithm string
	Scope     string
	Lambda    *float64
}

// QueryResult is what the invariant checker needs from a query reply.
type QueryResult struct {
	IDs   []string
	Value float64
	// N is the candidate-pool size the server reports for the query.
	N int
	// Partial marks a degraded cluster read (HTTP 206): a member was down
	// and the answer covers the surviving members only. The result-size
	// and no-duplicate invariants still apply — N is the surviving pool.
	Partial bool
}

// Target is the system under load. Implementations must be safe for
// concurrent use; every method returns an error for transport failures and
// non-2xx replies alike — except mutation backpressure (429), which is
// retried per its Retry-After header, and degraded cluster reads (206),
// which count as success with Partial set.
type Target interface {
	Insert(ctx context.Context, items []Item) error
	Delete(ctx context.Context, id string) error
	Query(ctx context.Context, q QueryParams) (QueryResult, error)
}

// HTTPTarget drives a serve instance (or a cluster coordinator — the wire
// API is the same) over real HTTP.
type HTTPTarget struct {
	BaseURL string
	Client  *http.Client

	retried429 atomic.Uint64
}

// NewHTTPTarget wires a base URL and client (nil = http.DefaultClient).
func NewHTTPTarget(baseURL string, client *http.Client) *HTTPTarget {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPTarget{BaseURL: baseURL, Client: client}
}

// Retried429 reports how many shed mutations (429) were retried after
// waiting out their Retry-After — the report's backpressure line.
func (t *HTTPTarget) Retried429() uint64 { return t.retried429.Load() }

func (t *HTTPTarget) Insert(ctx context.Context, items []Item) error {
	body, err := marshalItems(items)
	if err != nil {
		return err
	}
	return t.mutate(ctx, http.MethodPost, "/items", body)
}

func (t *HTTPTarget) Delete(ctx context.Context, id string) error {
	return t.mutate(ctx, http.MethodDelete, "/items/"+id, nil)
}

// mutate runs one mutation, absorbing bounded 429 backpressure.
func (t *HTTPTarget) mutate(ctx context.Context, method, path string, body []byte) error {
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, t.BaseURL+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := t.Client.Do(req)
		if err != nil {
			return err
		}
		retryAfter := resp.Header.Get("Retry-After")
		code := resp.StatusCode
		drainBody(resp)
		if code == http.StatusOK {
			return nil
		}
		if code != http.StatusTooManyRequests || attempt >= max429Retries {
			return fmt.Errorf("%s %s: status %d", method, path, code)
		}
		t.retried429.Add(1)
		if err := sleepRetry(ctx, retryAfterWait(retryAfter)); err != nil {
			return err
		}
	}
}

func (t *HTTPTarget) Query(ctx context.Context, q QueryParams) (QueryResult, error) {
	body, err := marshalQuery(q)
	if err != nil {
		return QueryResult{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.BaseURL+"/diversify", bytes.NewReader(body))
	if err != nil {
		return QueryResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.Client.Do(req)
	if err != nil {
		return QueryResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
		drainBody(resp)
		return QueryResult{}, fmt.Errorf("POST /diversify: status %d", resp.StatusCode)
	}
	return decodeQueryResult(resp.Body)
}

// HandlerTarget drives an http.Handler in process — no sockets, no
// network stack. It is how scenarios run against an in-process server (or
// cluster coordinator) in tests, CI smoke runs, and bench probes.
type HandlerTarget struct {
	h http.Handler

	retried429 atomic.Uint64
}

// NewHandlerTarget wraps a handler (typically server.New(...).Handler()).
func NewHandlerTarget(h http.Handler) *HandlerTarget { return &HandlerTarget{h: h} }

// Retried429 reports how many shed mutations (429) were retried after
// waiting out their Retry-After.
func (t *HandlerTarget) Retried429() uint64 { return t.retried429.Load() }

func (t *HandlerTarget) roundTrip(ctx context.Context, method, path string, body []byte) *httptest.ResponseRecorder {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd).WithContext(ctx)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	return rec
}

// mutate runs one in-process mutation, absorbing bounded 429 backpressure.
func (t *HandlerTarget) mutate(ctx context.Context, method, path string, body []byte) error {
	for attempt := 0; ; attempt++ {
		rec := t.roundTrip(ctx, method, path, body)
		if rec.Code == http.StatusOK {
			return nil
		}
		if rec.Code != http.StatusTooManyRequests || attempt >= max429Retries {
			return fmt.Errorf("%s %s: status %d: %s", method, path, rec.Code, rec.Body.String())
		}
		t.retried429.Add(1)
		if err := sleepRetry(ctx, retryAfterWait(rec.Header().Get("Retry-After"))); err != nil {
			return err
		}
	}
}

func (t *HandlerTarget) Insert(ctx context.Context, items []Item) error {
	body, err := marshalItems(items)
	if err != nil {
		return err
	}
	return t.mutate(ctx, http.MethodPost, "/items", body)
}

func (t *HandlerTarget) Delete(ctx context.Context, id string) error {
	return t.mutate(ctx, http.MethodDelete, "/items/"+id, nil)
}

func (t *HandlerTarget) Query(ctx context.Context, q QueryParams) (QueryResult, error) {
	body, err := marshalQuery(q)
	if err != nil {
		return QueryResult{}, err
	}
	rec := t.roundTrip(ctx, http.MethodPost, "/diversify", body)
	if rec.Code != http.StatusOK && rec.Code != http.StatusPartialContent {
		return QueryResult{}, fmt.Errorf("POST /diversify: status %d: %s", rec.Code, rec.Body.String())
	}
	return decodeQueryResult(rec.Body)
}

func marshalItems(items []Item) ([]byte, error) {
	payload := make([]server.ItemPayload, len(items))
	for i, it := range items {
		payload[i] = server.ItemPayload{ID: it.ID, Weight: it.Weight, Vector: it.Vector}
	}
	if len(payload) == 1 {
		return json.Marshal(payload[0])
	}
	return json.Marshal(payload)
}

func marshalQuery(q QueryParams) ([]byte, error) {
	return json.Marshal(server.DiversifyRequest{
		K: q.K, Algorithm: q.Algorithm, Scope: q.Scope, Lambda: q.Lambda,
	})
}

func decodeQueryResult(r io.Reader) (QueryResult, error) {
	var resp struct {
		server.DiversifyResponse
		Partial bool `json:"partial"`
	}
	if err := json.NewDecoder(r).Decode(&resp); err != nil {
		return QueryResult{}, fmt.Errorf("decode /diversify response: %w", err)
	}
	out := QueryResult{Value: resp.Value, N: resp.N, Partial: resp.Partial, IDs: make([]string, len(resp.Items))}
	for i, it := range resp.Items {
		out.IDs[i] = it.ID
	}
	return out, nil
}

func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
