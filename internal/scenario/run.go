package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Options configures one engine run.
type Options struct {
	// Target is the system under load (required).
	Target Target
	// Clock drives scheduling (nil = wall clock). Tests substitute a
	// VirtualClock for deterministic open-loop schedules.
	Clock Clock
	// RecordOps captures every generated op in RunResult.OpLog — the
	// deterministic-replay artifact. Off by default (it retains the whole
	// sequence in memory).
	RecordOps bool
	// MaxFailures caps recorded errors and violations (default 20, like
	// cmd/loadgen's report).
	MaxFailures int
}

// OpRecord is one op-log entry: everything that identifies the generated
// op, none of the timing. Two runs of the same spec and seed produce
// identical per-stream logs regardless of scheduling.
type OpRecord struct {
	Index   int     `json:"index"`
	Kind    string  `json:"kind"`
	ID      string  `json:"id,omitempty"`
	VecHash uint64  `json:"vec_hash,omitempty"`
	Weight  float64 `json:"weight,omitempty"`
	K       int     `json:"k,omitempty"`
	Lambda  float64 `json:"lambda,omitempty"` // -1 = no override
}

// LatencySummary condenses one op kind's latency samples.
type LatencySummary struct {
	Count                    int64
	Mean, P50, P95, P99, Max time.Duration
}

// Summarize sorts samples and extracts the summary percentiles.
func Summarize(samples []time.Duration) LatencySummary {
	s := LatencySummary{Count: int64(len(samples))}
	if len(samples) == 0 {
		return s
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	s.Mean = sum / time.Duration(len(samples))
	q := func(p float64) time.Duration { return samples[int(p*float64(len(samples)-1))] }
	s.P50, s.P95, s.P99, s.Max = q(0.50), q(0.95), q(0.99), samples[len(samples)-1]
	return s
}

// StreamResult is one stream's share of the run.
type StreamResult struct {
	Name   string
	Counts [numOpKinds]int64
	Lat    [numOpKinds]LatencySummary
}

// RunResult is the outcome of one scenario run.
type RunResult struct {
	Name string
	// OpenLoop is true when any stream ran open-loop (latencies then
	// include scheduled-but-queued time).
	OpenLoop bool
	Elapsed  time.Duration
	// Counts and Lat aggregate across streams, indexed like the op kinds
	// (Inserts/Updates/Deletes/Queries accessors below).
	counts [numOpKinds]int64
	lat    [numOpKinds]LatencySummary
	// MutationLat merges insert, update, and delete samples — the
	// contention report's stall metric.
	MutationLat LatencySummary
	Streams     []StreamResult
	// Errors are transport or non-2xx failures; Violations are invariant
	// breaches. Both are capped at Options.MaxFailures.
	Errors     []string
	Violations []string
	// OpLog holds each stream's generated sequence when
	// Options.RecordOps was set, keyed by stream name.
	OpLog map[string][]OpRecord
}

// Inserts returns the completed insert count.
func (r *RunResult) Inserts() int64 { return r.counts[opInsert] }

// Updates returns the completed update count.
func (r *RunResult) Updates() int64 { return r.counts[opUpdate] }

// Deletes returns the completed delete count.
func (r *RunResult) Deletes() int64 { return r.counts[opDelete] }

// Queries returns the completed query count.
func (r *RunResult) Queries() int64 { return r.counts[opQuery] }

// Total returns the completed op count across kinds.
func (r *RunResult) Total() int64 {
	var t int64
	for _, c := range r.counts {
		t += c
	}
	return t
}

// InsertLat returns the insert latency summary.
func (r *RunResult) InsertLat() LatencySummary { return r.lat[opInsert] }

// UpdateLat returns the update latency summary.
func (r *RunResult) UpdateLat() LatencySummary { return r.lat[opUpdate] }

// DeleteLat returns the delete latency summary.
func (r *RunResult) DeleteLat() LatencySummary { return r.lat[opDelete] }

// QueryLat returns the query latency summary.
func (r *RunResult) QueryLat() LatencySummary { return r.lat[opQuery] }

// checker evaluates the spec's inline invariants during the run.
type checker struct {
	mu          sync.Mutex
	max         int
	resultSize  bool
	noDup       bool
	noDeleted   bool
	monotone    bool
	deleted     map[string]int64 // id → ack sequence number
	ackSeq      int64
	prevVal     float64
	havePrev    bool
	errs, viols []string
}

func newChecker(spec *Spec, maxFailures int) *checker {
	c := &checker{max: maxFailures, deleted: make(map[string]int64)}
	for _, inv := range spec.EffectiveInvariants() {
		switch inv {
		case InvResultSize:
			c.resultSize = true
		case InvNoDuplicates:
			c.noDup = true
		case InvNoDeleted:
			c.noDeleted = true
		case InvMonotoneObjective:
			c.monotone = true
		}
	}
	return c
}

func (c *checker) addErr(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.errs) < c.max {
		c.errs = append(c.errs, fmt.Sprintf(format, args...))
	}
}

func (c *checker) addViolation(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.viols) < c.max {
		c.viols = append(c.viols, fmt.Sprintf(format, args...))
	}
}

// deleteAcked records an acknowledged delete; from this moment no query may
// return the id.
func (c *checker) deleteAcked(id string) {
	c.mu.Lock()
	c.ackSeq++
	c.deleted[id] = c.ackSeq
	c.mu.Unlock()
}

// querySnapshot captures the ack horizon before a query is issued: any id
// whose delete sequence is ≤ the snapshot must not appear in that query's
// results (deletes racing the query may).
func (c *checker) querySnapshot() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ackSeq
}

// checkQuery evaluates the enabled invariants against one query result.
func (c *checker) checkQuery(q QueryParams, res QueryResult, snap int64) {
	if c.resultSize {
		want := q.K
		if res.N < want {
			want = res.N
		}
		if len(res.IDs) != want {
			c.addViolation("query returned %d items, want min(k=%d, n=%d)", len(res.IDs), q.K, res.N)
		}
	}
	if c.noDup || c.noDeleted {
		seen := make(map[string]bool, len(res.IDs))
		for _, id := range res.IDs {
			if c.noDup {
				if seen[id] {
					c.addViolation("duplicate id %q in query result", id)
				}
				seen[id] = true
			}
			if c.noDeleted {
				c.mu.Lock()
				seq, wasDeleted := c.deleted[id]
				c.mu.Unlock()
				if wasDeleted && seq <= snap {
					c.addViolation("stale deleted item %q in query result", id)
				}
			}
		}
	}
	if c.monotone {
		c.mu.Lock()
		prev, have := c.prevVal, c.havePrev
		decreased := have && res.Value < prev-1e-9
		if !decreased {
			c.prevVal, c.havePrev = res.Value, true
		}
		c.mu.Unlock()
		if decreased {
			c.addViolation("objective decreased under inserts: %g → %g", prev, res.Value)
		}
	}
}

// Run executes the scenario against opts.Target and collects the result.
// The generated op sequence is a pure function of (spec, seed): generation
// is decoupled from execution timing, so a failing run replays exactly
// under the same spec and seed.
func Run(ctx context.Context, spec *Spec, opts Options) (*RunResult, error) {
	if opts.Target == nil {
		return nil, fmt.Errorf("scenario: Options.Target is required")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	clock := opts.Clock
	if clock == nil {
		clock = realClock{}
	}
	maxFailures := opts.MaxFailures
	if maxFailures <= 0 {
		maxFailures = 20
	}

	gens := make([]*generator, len(spec.Streams))
	for i := range spec.Streams {
		g, err := newGenerator(spec, i, spec.Duration.Duration)
		if err != nil {
			return nil, err
		}
		gens[i] = g
	}
	chk := newChecker(spec, maxFailures)
	if spec.SeedItems > 0 {
		if err := seedCorpus(ctx, spec, gens, opts.Target); err != nil {
			return nil, fmt.Errorf("scenario: seeding corpus: %w", err)
		}
	}

	res := &RunResult{Name: spec.Name}
	if opts.RecordOps {
		res.OpLog = make(map[string][]OpRecord, len(spec.Streams))
	}
	start := clock.Now()
	deadline := time.Time{}
	if spec.Duration.Duration > 0 {
		deadline = start.Add(spec.Duration.Duration)
	}

	streamRes := make([]*streamRun, len(spec.Streams))
	var wg sync.WaitGroup
	for i := range spec.Streams {
		sr := newStreamRun(&spec.Streams[i], gens[i], chk, opts, clock, start, deadline)
		streamRes[i] = sr
		for w := 0; w < sr.slots; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sr.work(ctx, opts.Target)
			}()
		}
	}
	wg.Wait()
	res.Elapsed = clock.Now().Sub(start)

	var merged [numOpKinds][]time.Duration
	var mutations []time.Duration
	for i, sr := range streamRes {
		st := StreamResult{Name: spec.Streams[i].Name}
		for k := opKind(0); k < numOpKinds; k++ {
			samples := sr.samplesOf(k)
			st.Counts[k] = int64(len(samples))
			st.Lat[k] = Summarize(samples)
			merged[k] = append(merged[k], samples...)
		}
		res.Streams = append(res.Streams, st)
		if spec.Streams[i].Arrival.Mode == ArrivalOpen {
			res.OpenLoop = true
		}
		if opts.RecordOps {
			res.OpLog[spec.Streams[i].Name] = sr.oplog
		}
	}
	for k := opKind(0); k < numOpKinds; k++ {
		res.counts[k] = int64(len(merged[k]))
		if k != opQuery {
			mutations = append(mutations, merged[k]...)
		}
		res.lat[k] = Summarize(merged[k])
	}
	res.MutationLat = Summarize(mutations)
	chk.mu.Lock()
	res.Errors, res.Violations = chk.errs, chk.viols
	chk.mu.Unlock()
	return res, nil
}

// depTracker lets an op wait for an earlier op it depends on (a delete for
// its item's insert). Deps always point backwards at already-claimed ops
// with earlier arrival times, so waits cannot deadlock.
type depTracker struct {
	mu      sync.Mutex
	done    map[int]bool
	waiters map[int]chan struct{}
}

func newDepTracker() *depTracker {
	return &depTracker{done: make(map[int]bool), waiters: make(map[int]chan struct{})}
}

// complete marks op index done and releases its waiters.
func (t *depTracker) complete(index int) {
	t.mu.Lock()
	t.done[index] = true
	if ch, ok := t.waiters[index]; ok {
		close(ch)
		delete(t.waiters, index)
	}
	t.mu.Unlock()
}

// wait blocks until op index completes or ctx is done.
func (t *depTracker) wait(ctx context.Context, index int) error {
	t.mu.Lock()
	if t.done[index] {
		t.mu.Unlock()
		return nil
	}
	ch, ok := t.waiters[index]
	if !ok {
		ch = make(chan struct{})
		t.waiters[index] = ch
	}
	t.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// streamRun is one stream's execution state, shared by its worker
// goroutines.
type streamRun struct {
	spec     *StreamSpec
	gen      *generator
	genMu    sync.Mutex
	chk      *checker
	clock    Clock
	start    time.Time
	deadline time.Time
	open     bool
	slots    int
	record   bool
	deps     *depTracker

	mu      sync.Mutex
	samples [numOpKinds][]time.Duration
	oplog   []OpRecord
}

func newStreamRun(st *StreamSpec, gen *generator, chk *checker, opts Options, clock Clock, start, deadline time.Time) *streamRun {
	return &streamRun{
		spec:     st,
		gen:      gen,
		chk:      chk,
		clock:    clock,
		start:    start,
		deadline: deadline,
		open:     st.Arrival.Mode == ArrivalOpen,
		slots:    streamSlots(st),
		record:   opts.RecordOps,
		deps:     newDepTracker(),
	}
}

// work is one slot's loop: claim the next generated op, wait for its
// scheduled arrival (open loop), execute, and record. Claims happen in
// index order under genMu, which is what upholds the generator's settle
// horizon.
func (sr *streamRun) work(ctx context.Context, target Target) {
	for {
		if ctx.Err() != nil {
			return
		}
		// Closed-loop duration runs stop claiming at the deadline;
		// open-loop generation is already bounded by arrival times, and
		// every scheduled op executes even if the run overshoots the
		// deadline draining the backlog (latency honesty: dropping queued
		// ops would be coordinated omission by another name).
		if !sr.open && !sr.deadline.IsZero() && sr.clock.Now().After(sr.deadline) {
			return
		}
		sr.genMu.Lock()
		op, ok := sr.gen.generate()
		if ok && sr.record {
			sr.oplog = append(sr.oplog, recordOf(op))
		}
		sr.genMu.Unlock()
		if !ok {
			return
		}

		var t0 time.Time
		if sr.open {
			// Latency is measured from the scheduled arrival, not from
			// when a slot freed up: time spent queued behind a saturated
			// in-flight pool counts.
			t0 = sr.start.Add(op.at)
			if err := sr.clock.SleepUntil(ctx, t0); err != nil {
				return
			}
		} else {
			t0 = sr.clock.Now()
		}
		if sr.execute(ctx, target, op) {
			lat := sr.clock.Now().Sub(t0)
			sr.mu.Lock()
			sr.samples[op.kind] = append(sr.samples[op.kind], lat)
			sr.mu.Unlock()
		}
	}
}

// execute runs one op; false means the op errored (recorded in the
// checker) and contributes no latency sample. Ops that write an item mark
// themselves complete in the dependency tracker (error or not); ops that
// depend on an earlier write wait for it first, so a delete can never
// overtake the insert it targets even when that insert is stuck behind a
// slow op.
func (sr *streamRun) execute(ctx context.Context, target Target, op genOp) bool {
	if op.dependsOn >= 0 {
		if err := sr.deps.wait(ctx, op.dependsOn); err != nil {
			return false
		}
	}
	switch op.kind {
	case opInsert, opUpdate:
		err := target.Insert(ctx, []Item{op.item})
		sr.deps.complete(op.index)
		if err != nil {
			sr.chk.addErr("%s %s: %v", op.kind, op.item.ID, err)
			return false
		}
	case opDelete:
		if err := target.Delete(ctx, op.target); err != nil {
			sr.chk.addErr("delete %s: %v", op.target, err)
			return false
		}
		sr.chk.deleteAcked(op.target)
	case opQuery:
		snap := sr.chk.querySnapshot()
		res, err := target.Query(ctx, op.query)
		if err != nil {
			sr.chk.addErr("query: %v", err)
			return false
		}
		sr.chk.checkQuery(op.query, res, snap)
	}
	return true
}

// samplesOf hands back one kind's samples once the run's workers are done.
func (sr *streamRun) samplesOf(k opKind) []time.Duration {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return sr.samples[k]
}

func recordOf(op genOp) OpRecord {
	rec := OpRecord{Index: op.index, Kind: op.kind.String(), Lambda: -1}
	switch op.kind {
	case opInsert, opUpdate:
		rec.ID = op.item.ID
		rec.Weight = op.item.Weight
		rec.VecHash = vecHash(op.item.Vector)
	case opDelete:
		rec.ID = op.target
	case opQuery:
		rec.K = op.query.K
		if op.query.Lambda != nil {
			rec.Lambda = *op.query.Lambda
		}
	}
	return rec
}

// seedCorpus bulk-inserts the scenario's starting corpus and hands the
// seeded ids round-robin to the streams that can churn them (non-zero
// update or delete weight), so those ops have eligible targets from the
// first generated op.
func seedCorpus(ctx context.Context, spec *Spec, gens []*generator, target Target) error {
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5eed))
	var churners []*generator
	for i, g := range gens {
		for _, ow := range spec.Streams[i].Mix {
			if (ow.Op == OpDelete || ow.Op == OpUpdate) && ow.Weight > 0 {
				churners = append(churners, g)
				break
			}
		}
	}
	const batch = 128
	adopted := make([][]string, len(churners))
	for lo := 0; lo < spec.SeedItems; lo += batch {
		hi := min(lo+batch, spec.SeedItems)
		items := make([]Item, 0, hi-lo)
		for i := lo; i < hi; i++ {
			vec := make([]float64, spec.Dim)
			for k := range vec {
				vec[k] = rng.Float64()
			}
			id := fmt.Sprintf("seed-%d", i)
			items = append(items, Item{ID: id, Weight: rng.Float64(), Vector: vec})
			if len(churners) > 0 {
				adopted[i%len(churners)] = append(adopted[i%len(churners)], id)
			}
		}
		if err := target.Insert(ctx, items); err != nil {
			return err
		}
	}
	for i, g := range churners {
		g.adopt(adopted[i])
	}
	return nil
}
