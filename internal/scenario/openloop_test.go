package scenario

import (
	"context"
	"testing"
	"time"
)

// stalledTarget simulates a server whose every op takes service time on a
// virtual clock: no real sleeping, fully deterministic.
type stalledTarget struct {
	clock   *VirtualClock
	service time.Duration
}

func (s *stalledTarget) Insert(ctx context.Context, items []Item) error {
	s.clock.Advance(s.service)
	return nil
}

func (s *stalledTarget) Delete(ctx context.Context, id string) error {
	s.clock.Advance(s.service)
	return nil
}

func (s *stalledTarget) Query(ctx context.Context, q QueryParams) (QueryResult, error) {
	s.clock.Advance(s.service)
	return QueryResult{}, nil
}

// insertOnlySpec issues inserts at the given arrival model against a stalled
// target for 500ms of virtual time.
func insertOnlySpec(arrival ArrivalSpec) *Spec {
	return &Spec{
		Name:     "stall-probe",
		Seed:     11,
		Duration: seconds(0.5),
		Dim:      2,
		Streams: []StreamSpec{{
			Name:    "writes",
			Mix:     []OpWeight{{Op: OpInsert, Weight: 1}},
			Arrival: arrival,
			Items:   ItemSpec{IDTemplate: "st-{seq}"},
		}},
		Invariants: []string{InvResultSize},
	}
}

// TestOpenLoopCountsQueuedTime is the coordinated-omission test: ops arrive
// every 10ms but the target takes 100ms each, so the single in-flight slot
// saturates and a growing queue builds. An honest open-loop report must
// charge that queued time to latency — the p99 climbs far above the 100ms
// service time. A closed-loop run of the same stub, by contrast, reports a
// flat 100ms per call and hides the overload entirely.
func TestOpenLoopCountsQueuedTime(t *testing.T) {
	const service = 100 * time.Millisecond
	start := time.Unix(1_700_000_000, 0)

	// Open loop: 100 ops/sec scheduled arrivals, one slot.
	clock := NewVirtualClock(start)
	open, err := Run(context.Background(),
		insertOnlySpec(ArrivalSpec{Mode: ArrivalOpen, Rate: 100, MaxInFlight: 1}),
		Options{Target: &stalledTarget{clock: clock, service: service}, Clock: clock})
	if err != nil {
		t.Fatalf("open-loop Run: %v", err)
	}
	if open.Inserts() != 50 {
		t.Fatalf("open loop completed %d inserts, want 50 (500ms at 100/s)", open.Inserts())
	}

	// Closed loop: one worker back to back on the same stalled stub.
	clock = NewVirtualClock(start)
	closed, err := Run(context.Background(),
		insertOnlySpec(ArrivalSpec{Mode: ArrivalClosed, Workers: 1}),
		Options{Target: &stalledTarget{clock: clock, service: service}, Clock: clock})
	if err != nil {
		t.Fatalf("closed-loop Run: %v", err)
	}

	openP99 := open.InsertLat().P99
	closedP99 := closed.InsertLat().P99
	if closedP99 != service {
		t.Errorf("closed-loop p99 = %v, want exactly the %v service time", closedP99, service)
	}
	// With 10ms spacing and 100ms service, op i queues ~90ms longer than
	// op i-1; the tail latency is dominated by queueing, not service.
	if openP99 < 10*service {
		t.Errorf("open-loop p99 = %v does not include queued time (service %v)", openP99, service)
	}
	if first := open.InsertLat().P50; first <= closedP99 {
		t.Errorf("open-loop p50 = %v should already exceed the closed-loop %v under saturation", first, closedP99)
	}
	// The exact schedule is deterministic under a virtual clock and one
	// slot: op k (1-based) arrives at 10k ms, completes at 10 + 100k ms, so
	// its latency is 100 + 90(k-1) ms.
	wantMax := service + (service-10*time.Millisecond)*time.Duration(open.Inserts()-1)
	if open.InsertLat().Max != wantMax {
		t.Errorf("open-loop max latency = %v, want %v", open.InsertLat().Max, wantMax)
	}
}

// TestOpenLoopKeepsUp checks the other side: when the target is fast enough
// for the arrival rate, open-loop latency is just the service time.
func TestOpenLoopKeepsUp(t *testing.T) {
	const service = 1 * time.Millisecond
	start := time.Unix(1_700_000_000, 0)
	clock := NewVirtualClock(start)
	res, err := Run(context.Background(),
		insertOnlySpec(ArrivalSpec{Mode: ArrivalOpen, Rate: 100, MaxInFlight: 1}),
		Options{Target: &stalledTarget{clock: clock, service: service}, Clock: clock})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Inserts() != 50 {
		t.Fatalf("completed %d inserts, want 50", res.Inserts())
	}
	if got := res.InsertLat().Max; got != service {
		t.Errorf("max latency = %v, want %v (no queueing at 10ms spacing)", got, service)
	}
}
