package scenario

import (
	"fmt"
	"os"
	"sort"
	"time"
)

// Builtin returns a deep copy of the named built-in scenario, or false.
// The shipped scenarios/ directory contains the same specs as JSON; a
// golden test keeps the two representations identical.
func Builtin(name string) (*Spec, bool) {
	s, ok := builtins[name]
	if !ok {
		return nil, false
	}
	return s.Clone(), true
}

// BuiltinNames lists the built-in scenarios, sorted.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Load resolves nameOrPath to a spec: a built-in name first, then a spec
// file on disk.
func Load(nameOrPath string) (*Spec, error) {
	if s, ok := Builtin(nameOrPath); ok {
		return s, nil
	}
	f, err := os.Open(nameOrPath)
	if err != nil {
		return nil, fmt.Errorf("scenario: %q is not a built-in (%v) and not readable: %w", nameOrPath, BuiltinNames(), err)
	}
	defer f.Close()
	return DecodeSpec(f)
}

func seconds(s float64) Duration {
	return Duration{time.Duration(s * float64(time.Second))}
}

var builtins = map[string]*Spec{
	"steady-mixed": {
		Name: "steady-mixed",
		Description: "The bread-and-butter serving mix at a fixed open-loop rate: " +
			"inserts, updates, deletes, and greedy queries over a pre-seeded corpus, " +
			"with the standard result invariants checked on every query.",
		Seed:      1,
		Duration:  seconds(3),
		Dim:       8,
		SeedItems: 512,
		Streams: []StreamSpec{{
			Name: "mixed",
			Mix: []OpWeight{
				{Op: OpInsert, Weight: 55},
				{Op: OpUpdate, Weight: 10},
				{Op: OpDelete, Weight: 10},
				{Op: OpQuery, Weight: 25},
			},
			Arrival: ArrivalSpec{Mode: ArrivalOpen, Rate: 300, MaxInFlight: 32},
			Items:   ItemSpec{IDTemplate: "sm-{stream}-{seq}"},
			Query:   QuerySpec{K: 10, Algorithm: "greedy", Scope: "full"},
		}},
		Invariants: []string{InvResultSize, InvNoDuplicates, InvNoDeleted},
	},

	"zipf-read-heavy": {
		Name: "zipf-read-heavy",
		Description: "A read-dominated mix whose writes concentrate on recent items " +
			"under a Zipf popularity curve, with per-query λ rotation exercising the " +
			"server's query-time trade-off path.",
		Seed:      2,
		Duration:  seconds(3),
		Dim:       8,
		SeedItems: 1024,
		Streams: []StreamSpec{{
			Name: "readers",
			Mix: []OpWeight{
				{Op: OpInsert, Weight: 8},
				{Op: OpUpdate, Weight: 12},
				{Op: OpDelete, Weight: 5},
				{Op: OpQuery, Weight: 75},
			},
			Arrival: ArrivalSpec{Mode: ArrivalOpen, Rate: 500, MaxInFlight: 64},
			Items:   ItemSpec{IDTemplate: "zr-{stream}-{seq}"},
			Keys:    KeySpec{Dist: KeysZipf, S: 1.3},
			Query:   QuerySpec{K: 10, Algorithm: "greedy", Scope: "full", Lambdas: []float64{0, 0.25, 0.5, 1, 2}},
		}},
		Invariants: []string{InvResultSize, InvNoDuplicates, InvNoDeleted},
	},

	"adversarial-churn": {
		Name: "adversarial-churn",
		Description: "Insert/delete dominated load that always deletes the most " +
			"recently settled insert — the adversarial order for recency-biased " +
			"maintained structures and the epoch store's compaction.",
		Seed:      3,
		Duration:  seconds(3),
		Dim:       8,
		SeedItems: 512,
		Streams: []StreamSpec{{
			Name: "churn",
			Mix: []OpWeight{
				{Op: OpInsert, Weight: 45},
				{Op: OpDelete, Weight: 45},
				{Op: OpQuery, Weight: 10},
			},
			Arrival: ArrivalSpec{Mode: ArrivalOpen, Rate: 400, MaxInFlight: 32},
			Items:   ItemSpec{IDTemplate: "ac-{stream}-{seq}"},
			Churn:   ChurnSpec{Pattern: ChurnDeleteRecent},
			Query:   QuerySpec{K: 10, Algorithm: "greedy", Scope: "full"},
		}},
		Invariants: []string{InvResultSize, InvNoDuplicates, InvNoDeleted},
	},

	"flash-crowd": {
		Name: "flash-crowd",
		Description: "A popularity spike: the arrival rate ramps 6× for the middle " +
			"of the run while updates concentrate on a small hot set of recent items " +
			"with ramping probability.",
		Seed:      4,
		Dim:       8,
		SeedItems: 512,
		Streams: []StreamSpec{{
			Name: "crowd",
			Mix: []OpWeight{
				{Op: OpInsert, Weight: 30},
				{Op: OpUpdate, Weight: 20},
				{Op: OpDelete, Weight: 10},
				{Op: OpQuery, Weight: 40},
			},
			Arrival: ArrivalSpec{Mode: ArrivalOpen, MaxInFlight: 64, Ramp: []RampStage{
				{For: seconds(1), Rate: 150},
				{For: seconds(1.5), Rate: 900},
				{For: seconds(1), Rate: 150},
			}},
			Items: ItemSpec{IDTemplate: "fc-{stream}-{seq}"},
			Keys:  KeySpec{Dist: KeysFlashCrowd, HotSet: 16},
			Query: QuerySpec{K: 10, Algorithm: "greedy", Scope: "full"},
		}},
		Invariants: []string{InvResultSize, InvNoDuplicates, InvNoDeleted},
	},

	"contention": {
		Name: "contention",
		Description: "The writer-stall probe as a declarative scenario: two closed-loop " +
			"workers keep slow full-scope local-search queries permanently in flight " +
			"while an open-loop mutation stream measures insert/delete latency — its " +
			"p99 is the stall metric that exposed the old RWMutex corpus.",
		Seed:      5,
		Duration:  seconds(3),
		Dim:       8,
		SeedItems: 1024,
		Streams: []StreamSpec{
			{
				Name:    "slow-queries",
				Mix:     []OpWeight{{Op: OpQuery, Weight: 1}},
				Arrival: ArrivalSpec{Mode: ArrivalClosed, Workers: 2},
				Query:   QuerySpec{K: 64, Algorithm: "localsearch", Scope: "full"},
			},
			{
				Name: "mutations",
				Mix: []OpWeight{
					{Op: OpInsert, Weight: 70},
					{Op: OpDelete, Weight: 30},
				},
				Arrival: ArrivalSpec{Mode: ArrivalOpen, Rate: 400, MaxInFlight: 16},
				Items:   ItemSpec{IDTemplate: "ct-{stream}-{seq}"},
			},
		},
		Invariants: []string{InvResultSize, InvNoDuplicates, InvNoDeleted},
	},
}
