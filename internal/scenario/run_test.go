package scenario

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"maxsumdiv/internal/server"
)

func newTestTarget(t *testing.T) *HandlerTarget {
	t.Helper()
	srv, err := server.New(server.Config{Shards: 2, Lambda: 1, Parallelism: 1})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	return NewHandlerTarget(srv.Handler())
}

// shortSpec trims a builtin down to a fast test run.
func shortSpec(t *testing.T, name string, d time.Duration) *Spec {
	t.Helper()
	spec, ok := Builtin(name)
	if !ok {
		t.Fatalf("no builtin %q", name)
	}
	spec.Duration = Duration{d}
	for i := range spec.Streams {
		if len(spec.Streams[i].Arrival.Ramp) > 0 {
			// Shrink ramps proportionally so bounded-arrival streams stay
			// bounded but short.
			for j := range spec.Streams[i].Arrival.Ramp {
				spec.Streams[i].Arrival.Ramp[j].For = Duration{d / time.Duration(len(spec.Streams[i].Arrival.Ramp))}
			}
			spec.Duration = Duration{0}
			for _, stg := range spec.Streams[i].Arrival.Ramp {
				spec.Duration.Duration += stg.For.Duration
			}
		}
	}
	spec.SeedItems = min(spec.SeedItems, 128)
	return spec
}

func TestRunSteadyMixedSmoke(t *testing.T) {
	spec := shortSpec(t, "steady-mixed", 400*time.Millisecond)
	res, err := Run(context.Background(), spec, Options{Target: newTestTarget(t)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Total() == 0 {
		t.Fatal("no ops completed")
	}
	if res.Inserts() == 0 || res.Queries() == 0 {
		t.Fatalf("expected inserts and queries, got inserts=%d queries=%d", res.Inserts(), res.Queries())
	}
	if !res.OpenLoop {
		t.Error("steady-mixed is an open-loop scenario")
	}
	if len(res.Errors) > 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("invariant violations: %v", res.Violations)
	}
	if res.QueryLat().Count != res.Queries() {
		t.Errorf("query latency count %d != queries %d", res.QueryLat().Count, res.Queries())
	}
	wantMut := res.Inserts() + res.Updates() + res.Deletes()
	if res.MutationLat.Count != wantMut {
		t.Errorf("mutation latency count %d != %d", res.MutationLat.Count, wantMut)
	}
}

func TestRunAllBuiltinsSmoke(t *testing.T) {
	for _, name := range BuiltinNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := shortSpec(t, name, 300*time.Millisecond)
			res, err := Run(context.Background(), spec, Options{Target: newTestTarget(t)})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Total() == 0 {
				t.Fatal("no ops completed")
			}
			if len(res.Errors) > 0 {
				t.Fatalf("errors: %v", res.Errors)
			}
			if len(res.Violations) > 0 {
				t.Fatalf("invariant violations: %v", res.Violations)
			}
		})
	}
}

// TestRunDeterministicReplay is the replay guarantee: two runs of the same
// spec and seed produce identical per-stream op sequences and identical
// invariant outcomes, even though execution interleaving differs.
func TestRunDeterministicReplay(t *testing.T) {
	run := func() *RunResult {
		spec := shortSpec(t, "steady-mixed", 400*time.Millisecond)
		res, err := Run(context.Background(), spec, Options{Target: newTestTarget(t), RecordOps: true})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.OpLog) == 0 {
		t.Fatal("no op log recorded")
	}
	if !reflect.DeepEqual(a.OpLog, b.OpLog) {
		for name := range a.OpLog {
			la, lb := a.OpLog[name], b.OpLog[name]
			if len(la) != len(lb) {
				t.Fatalf("stream %q: %d vs %d ops", name, len(la), len(lb))
			}
			for i := range la {
				if la[i] != lb[i] {
					t.Fatalf("stream %q op %d differs:\n  %+v\n  %+v", name, i, la[i], lb[i])
				}
			}
		}
		t.Fatal("op logs differ")
	}
	if len(a.Violations) != len(b.Violations) {
		t.Fatalf("violation counts differ: %d vs %d", len(a.Violations), len(b.Violations))
	}
}

// TestRunReplayAcrossSeeds sanity-checks that the seed actually matters.
func TestRunReplayAcrossSeeds(t *testing.T) {
	logFor := func(seed int64) []OpRecord {
		spec := shortSpec(t, "steady-mixed", 200*time.Millisecond)
		spec.Seed = seed
		res, err := Run(context.Background(), spec, Options{Target: newTestTarget(t), RecordOps: true})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.OpLog[spec.Streams[0].Name]
	}
	if reflect.DeepEqual(logFor(1), logFor(2)) {
		t.Fatal("different seeds produced identical op logs")
	}
}

// TestRunMonotoneObjective runs a serialized insert-only exact workload and
// expects the objective to be non-decreasing against the real server.
func TestRunMonotoneObjective(t *testing.T) {
	spec := &Spec{
		Name: "monotone-test",
		Seed: 7,
		Dim:  4,
		Streams: []StreamSpec{{
			Name: "serial",
			Mix: []OpWeight{
				{Op: OpInsert, Weight: 60},
				{Op: OpQuery, Weight: 40},
			},
			Arrival:  ArrivalSpec{Mode: ArrivalClosed, Workers: 1},
			Ops:      150,
			MaxItems: 30,
			Items:    ItemSpec{IDTemplate: "mono-{seq}"},
			Query:    QuerySpec{K: 5, Algorithm: "exact", Scope: "full"},
		}},
		Invariants: []string{InvResultSize, InvNoDuplicates, InvMonotoneObjective},
	}
	res, err := Run(context.Background(), spec, Options{Target: newTestTarget(t)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Total() != 150 {
		t.Fatalf("completed %d ops, want 150", res.Total())
	}
	if len(res.Errors) > 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("monotone violations: %v", res.Violations)
	}
}

// misbehavingTarget wraps a real target but corrupts query results, so the
// invariant checker has something to catch.
type misbehavingTarget struct {
	inner Target

	mu      sync.Mutex
	deleted []string
}

func (m *misbehavingTarget) Insert(ctx context.Context, items []Item) error {
	return m.inner.Insert(ctx, items)
}

func (m *misbehavingTarget) Delete(ctx context.Context, id string) error {
	if err := m.inner.Delete(ctx, id); err != nil {
		return err
	}
	m.mu.Lock()
	m.deleted = append(m.deleted, id)
	m.mu.Unlock()
	return nil
}

func (m *misbehavingTarget) Query(ctx context.Context, q QueryParams) (QueryResult, error) {
	res, err := m.inner.Query(ctx, q)
	if err != nil {
		return res, err
	}
	// Resurrect a deleted id in place of a live one, and duplicate another.
	m.mu.Lock()
	if len(m.deleted) > 0 && len(res.IDs) > 1 {
		res.IDs[0] = m.deleted[0]
		res.IDs = append(res.IDs, res.IDs[1])
	}
	m.mu.Unlock()
	return res, nil
}

func TestRunInvariantViolationsDetected(t *testing.T) {
	spec := shortSpec(t, "steady-mixed", 300*time.Millisecond)
	target := &misbehavingTarget{inner: newTestTarget(t)}
	res, err := Run(context.Background(), spec, Options{Target: target})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Deletes() == 0 || res.Queries() == 0 {
		t.Fatalf("need deletes and queries to exercise the checker, got %d/%d", res.Deletes(), res.Queries())
	}
	if len(res.Violations) == 0 {
		t.Fatal("misbehaving target produced no invariant violations")
	}
	var sawStale, sawShape bool
	for _, v := range res.Violations {
		if strings.Contains(v, "stale deleted item") {
			sawStale = true
		}
		if strings.Contains(v, "duplicate id") || strings.Contains(v, "want min(k=") {
			sawShape = true
		}
	}
	if !sawStale {
		t.Errorf("no stale-delete violation in %v", res.Violations)
	}
	if !sawShape {
		t.Errorf("no duplicate/size violation in %v", res.Violations)
	}
}

// TestRunErrorsCapped checks MaxFailures bounds the recorded error list.
func TestRunErrorsCapped(t *testing.T) {
	spec := shortSpec(t, "steady-mixed", 200*time.Millisecond)
	spec.SeedItems = 0
	res, err := Run(context.Background(), spec, Options{Target: failingTarget{}, MaxFailures: 5})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Errors) == 0 {
		t.Fatal("failing target produced no errors")
	}
	if len(res.Errors) > 5 {
		t.Fatalf("recorded %d errors, cap was 5", len(res.Errors))
	}
}

type failingTarget struct{}

func (failingTarget) Insert(context.Context, []Item) error { return fmt.Errorf("boom") }
func (failingTarget) Delete(context.Context, string) error { return fmt.Errorf("boom") }
func (failingTarget) Query(context.Context, QueryParams) (QueryResult, error) {
	return QueryResult{}, fmt.Errorf("boom")
}
