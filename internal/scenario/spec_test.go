package scenario

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

const scenariosDir = "../../scenarios"

// TestScenarioGoldenFiles keeps the shipped scenarios/ directory and the
// builtin registry identical: every builtin has a JSON file whose bytes are
// exactly the builtin's canonical encoding, and no stray files exist.
// Regenerate with UPDATE_GOLDEN=1 go test ./internal/scenario -run Golden.
func TestScenarioGoldenFiles(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, name := range BuiltinNames() {
		spec, _ := Builtin(name)
		var want bytes.Buffer
		if err := spec.Encode(&want); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		path := filepath.Join(scenariosDir, name+".json")
		if update {
			if err := os.WriteFile(path, want.Bytes(), 0o644); err != nil {
				t.Fatalf("%s: write golden: %v", name, err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden file (run with UPDATE_GOLDEN=1 to regenerate): %v", name, err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("%s: scenarios/%s.json differs from the builtin (run with UPDATE_GOLDEN=1 to regenerate)", name, name)
		}
	}
	entries, err := os.ReadDir(scenariosDir)
	if err != nil {
		if update {
			return
		}
		t.Fatalf("read %s: %v", scenariosDir, err)
	}
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), ".json")
		if _, ok := Builtin(name); !ok {
			t.Errorf("scenarios/%s has no matching builtin", e.Name())
		}
	}
}

// TestShippedSpecsRoundTrip decodes every shipped spec file, checks it
// validates, round-trips decode→encode byte-exactly, and structurally equals
// its builtin.
func TestShippedSpecsRoundTrip(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(scenariosDir, "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no shipped specs found: %v", err)
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		spec, err := DecodeSpec(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
		var reenc bytes.Buffer
		if err := spec.Encode(&reenc); err != nil {
			t.Fatalf("%s: re-encode: %v", path, err)
		}
		if !bytes.Equal(data, reenc.Bytes()) {
			t.Errorf("%s: decode→encode is not byte-identical", path)
		}
		builtin, ok := Builtin(spec.Name)
		if !ok {
			t.Fatalf("%s: spec name %q is not a builtin", path, spec.Name)
		}
		if !reflect.DeepEqual(spec, builtin) {
			t.Errorf("%s: decoded spec differs structurally from builtin %q", path, spec.Name)
		}
	}
}

// TestDecodeSpecMalformed checks that invalid specs fail with typed
// *SpecError values carrying the offending field's JSON path.
func TestDecodeSpecMalformed(t *testing.T) {
	valid := func(mutate string) string {
		return `{
			"name": "t", "seed": 1, "duration": "1s", "dim": 4,
			"streams": [{
				"name": "s",
				"mix": [{"op": "insert", "weight": 1}],
				"arrival": {"mode": "open", "rate": 100},
				"items": {}, "keys": {}, "churn": {}, "query": {}
			}]` + mutate + `}`
	}
	cases := []struct {
		name     string
		json     string
		wantPath string
	}{
		{"missing name", `{"seed": 1, "dim": 4, "duration": "1s", "streams": [{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"open","rate":1}}]}`, "name"},
		{"zero seed", `{"name":"t","dim":4,"duration":"1s","streams":[{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"open","rate":1}}]}`, "seed"},
		{"bad dim", `{"name":"t","seed":1,"dim":0,"duration":"1s","streams":[{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"open","rate":1}}]}`, "dim"},
		{"no streams", `{"name":"t","seed":1,"dim":4,"duration":"1s","streams":[]}`, "streams"},
		{"bad op", `{"name":"t","seed":1,"dim":4,"duration":"1s","streams":[{"name":"s","mix":[{"op":"upsert","weight":1}],"arrival":{"mode":"open","rate":1}}]}`, "streams[0].mix[0].op"},
		{"negative weight", `{"name":"t","seed":1,"dim":4,"duration":"1s","streams":[{"name":"s","mix":[{"op":"insert","weight":-2}],"arrival":{"mode":"open","rate":1}}]}`, "streams[0].mix[0].weight"},
		{"zero total weight", `{"name":"t","seed":1,"dim":4,"duration":"1s","streams":[{"name":"s","mix":[{"op":"insert","weight":0}],"arrival":{"mode":"open","rate":1}}]}`, "streams[0].mix"},
		{"bad arrival mode", `{"name":"t","seed":1,"dim":4,"duration":"1s","streams":[{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"poisson","rate":1}}]}`, "streams[0].arrival.mode"},
		{"open without rate", `{"name":"t","seed":1,"dim":4,"duration":"1s","streams":[{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"open"}}]}`, "streams[0].arrival.rate"},
		{"closed with rate", `{"name":"t","seed":1,"dim":4,"duration":"1s","streams":[{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"closed","rate":5}}]}`, "streams[0].arrival.rate"},
		{"template without seq", `{"name":"t","seed":1,"dim":4,"duration":"1s","streams":[{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"open","rate":1},"items":{"id_template":"fixed-id"}}]}`, "streams[0].items.id_template"},
		{"bad keys dist", `{"name":"t","seed":1,"dim":4,"duration":"1s","streams":[{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"open","rate":1},"keys":{"dist":"pareto"}}]}`, "streams[0].keys.dist"},
		{"zipf s too small", `{"name":"t","seed":1,"dim":4,"duration":"1s","streams":[{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"open","rate":1},"keys":{"dist":"zipf","s":0.5}}]}`, "streams[0].keys.s"},
		{"bad churn", `{"name":"t","seed":1,"dim":4,"duration":"1s","streams":[{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"open","rate":1},"churn":{"pattern":"random"}}]}`, "streams[0].churn.pattern"},
		{"sliding window without window", `{"name":"t","seed":1,"dim":4,"duration":"1s","streams":[{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"open","rate":1},"churn":{"pattern":"sliding-window"}}]}`, "streams[0].churn.window"},
		{"unknown invariant", valid(`, "invariants": ["no_teleportation"]`), "invariants[0]"},
		{"duplicate stream names", `{"name":"t","seed":1,"dim":4,"duration":"1s","streams":[{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"open","rate":1}},{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"open","rate":1}}]}`, "streams[1].name"},
		{"monotone with deletes", `{"name":"t","seed":1,"dim":4,"duration":"1s","invariants":["monotone_objective"],"streams":[{"name":"s","mix":[{"op":"insert","weight":1},{"op":"delete","weight":1}],"arrival":{"mode":"closed","workers":1},"max_items":10,"query":{"algorithm":"exact"}}]}`, "streams[0].mix[1]"},
		{"monotone without exact", `{"name":"t","seed":1,"dim":4,"duration":"1s","invariants":["monotone_objective"],"streams":[{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"closed","workers":1},"max_items":10,"query":{"algorithm":"greedy"}}]}`, "streams[0].query.algorithm"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeSpec(strings.NewReader(tc.json))
			if err == nil {
				t.Fatal("malformed spec decoded without error")
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("error is %T (%v), want *SpecError", err, err)
			}
			if se.Path != tc.wantPath {
				t.Errorf("error path = %q, want %q (msg: %s)", se.Path, tc.wantPath, se.Msg)
			}
		})
	}
}

// TestDecodeSpecStrict covers the decode-layer rejections that are not
// validation failures: unknown fields, trailing data, bad durations.
func TestDecodeSpecStrict(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"unknown field", `{"name":"t","seed":1,"dim":4,"duration":"1s","turbo":true,"streams":[{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"open","rate":1}}]}`},
		{"trailing data", `{"name":"t","seed":1,"dim":4,"duration":"1s","streams":[{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"open","rate":1}}]} extra`},
		{"numeric duration", `{"name":"t","seed":1,"dim":4,"duration":1000,"streams":[{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"open","rate":1}}]}`},
		{"unparseable duration", `{"name":"t","seed":1,"dim":4,"duration":"three seconds","streams":[{"name":"s","mix":[{"op":"insert","weight":1}],"arrival":{"mode":"open","rate":1}}]}`},
		{"not json", `scenario: steady-mixed`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeSpec(strings.NewReader(tc.json)); err == nil {
				t.Fatal("expected a decode error")
			}
		})
	}
}

func TestSpecCloneIsDeep(t *testing.T) {
	orig, _ := Builtin("zipf-read-heavy")
	clone := orig.Clone()
	clone.Streams[0].Mix[0].Weight = 999
	clone.Streams[0].Query.Lambdas[0] = 42
	clone.Invariants[0] = "tampered"
	fresh, _ := Builtin("zipf-read-heavy")
	if !reflect.DeepEqual(orig, fresh) {
		t.Error("mutating a clone leaked into the builtin")
	}
}

func TestDurationJSON(t *testing.T) {
	d := Duration{1500 * time.Millisecond}
	b, err := d.MarshalJSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(b) != `"1.5s"` {
		t.Errorf("marshal = %s, want \"1.5s\"", b)
	}
	var back Duration
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Duration != d.Duration {
		t.Errorf("round trip: %v != %v", back.Duration, d.Duration)
	}
}

func TestLoadResolvesBuiltinsAndFiles(t *testing.T) {
	if _, err := Load("steady-mixed"); err != nil {
		t.Errorf("Load(builtin): %v", err)
	}
	if _, err := Load(filepath.Join(scenariosDir, "contention.json")); err != nil {
		t.Errorf("Load(file): %v", err)
	}
	if _, err := Load("no-such-scenario"); err == nil {
		t.Error("Load(nonsense) did not error")
	}
}
