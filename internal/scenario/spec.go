package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// maxSpecBytes bounds a spec document; real specs are a few KB.
const maxSpecBytes = 1 << 20

// Op kind names as they appear in spec mixes.
const (
	OpInsert = "insert"
	OpUpdate = "update"
	OpDelete = "delete"
	OpQuery  = "query"
)

// Invariant names a spec may enable. When a spec lists none, the engine
// checks DefaultInvariants.
const (
	// InvResultSize: every query returns exactly min(k, n) results, where n
	// is the candidate-pool size the server reports for that query.
	InvResultSize = "result_size"
	// InvNoDuplicates: no id appears twice in one query result.
	InvNoDuplicates = "no_duplicates"
	// InvNoDeleted: an id whose delete was acknowledged before the query
	// was issued never appears in the result.
	InvNoDeleted = "no_deleted"
	// InvMonotoneObjective: the query objective never decreases. Only
	// sound for a serialized insert-only exact workload, which Validate
	// enforces (single stream, one worker or in-flight slot, no
	// delete/update weight, algorithm "exact", max_items set).
	InvMonotoneObjective = "monotone_objective"
)

// DefaultInvariants are checked when a spec lists none.
var DefaultInvariants = []string{InvResultSize, InvNoDuplicates, InvNoDeleted}

// Arrival modes.
const (
	// ArrivalOpen schedules op arrival times from a target rate and runs
	// them through a bounded in-flight pool: an op whose slot is busy at
	// its scheduled time queues, and the queued time counts against its
	// latency. Reported percentiles are therefore coordinated-omission
	// free.
	ArrivalOpen = "open"
	// ArrivalClosed runs a fixed worker pool back to back: each worker
	// issues its next op as soon as the previous one completes. Latency is
	// measured per call, so a slow target silently throttles the offered
	// load — the classic closed-loop blind spot the open mode exists to
	// expose.
	ArrivalClosed = "closed"
)

// Key-popularity distributions (which live item an update or steady-churn
// delete targets).
const (
	KeysUniform = "uniform"
	// KeysZipf ranks live items newest-first and draws a Zipf(s) rank:
	// recent items are hot, the tail is cold.
	KeysZipf = "zipf"
	// KeysFlashCrowd ramps the probability of hitting a small hot set of
	// the most recent items from 10% to 90% over the run — a popularity
	// spike building up.
	KeysFlashCrowd = "flashcrowd"
)

// Churn patterns (how deletes choose their victim).
const (
	// ChurnSteady deletes by the stream's key distribution.
	ChurnSteady = "steady"
	// ChurnDeleteRecent always deletes the most recently settled insert —
	// the adversarial order for recency-biased maintained structures.
	ChurnDeleteRecent = "delete-recent"
	// ChurnSlidingWindow deletes the oldest item once the stream's live
	// set exceeds the window, holding corpus size roughly constant.
	ChurnSlidingWindow = "sliding-window"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("250ms", "1.5s") so specs stay human-readable.
type Duration struct{ time.Duration }

// MarshalJSON encodes the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

// UnmarshalJSON accepts a Go duration string.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"1.5s\": %w", err)
	}
	dd, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	d.Duration = dd
	return nil
}

// Spec is one declarative workload: what to run (streams of weighted ops
// over templated items), how fast (open-loop rates or closed-loop workers),
// for how long, and which invariants must hold while it runs.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed makes the whole run reproducible: every generated op sequence
	// is a pure function of (spec, seed).
	Seed int64 `json:"seed"`
	// Duration bounds the run (open-loop streams stop scheduling arrivals
	// past it; closed-loop workers stop claiming ops). Zero means every
	// stream must carry an op cap instead.
	Duration Duration `json:"duration,omitempty"`
	// Dim is the item vector dimension shared by all streams.
	Dim int `json:"dim"`
	// SeedItems pre-loads the corpus with this many items before the timed
	// run; seeded ids are distributed across the streams that delete or
	// update, so churn has targets from the first op.
	SeedItems int `json:"seed_items,omitempty"`
	// Streams run concurrently against the same target.
	Streams []StreamSpec `json:"streams"`
	// Invariants are checked during the run (empty = DefaultInvariants).
	Invariants []string `json:"invariants,omitempty"`
}

// StreamSpec is one concurrent op stream within a scenario.
type StreamSpec struct {
	Name string `json:"name"`
	// Mix is the weighted op table the stream draws from.
	Mix []OpWeight `json:"mix"`
	// Arrival sets the stream's load model.
	Arrival ArrivalSpec `json:"arrival"`
	// Ops caps the stream's generated op count (0 = bounded by the spec
	// duration alone).
	Ops int `json:"ops,omitempty"`
	// MaxItems caps the stream's live inserts; once reached, insert draws
	// become queries (used by the monotone-objective workload, whose exact
	// solver has a corpus limit).
	MaxItems int       `json:"max_items,omitempty"`
	Items    ItemSpec  `json:"items"`
	Keys     KeySpec   `json:"keys"`
	Churn    ChurnSpec `json:"churn"`
	Query    QuerySpec `json:"query"`
}

// OpWeight is one entry of a stream's weighted op table.
type OpWeight struct {
	Op     string `json:"op"`
	Weight int    `json:"weight"`
}

// ArrivalSpec sets how a stream's ops arrive.
type ArrivalSpec struct {
	// Mode is ArrivalOpen or ArrivalClosed.
	Mode string `json:"mode"`
	// Rate is the open-loop target arrival rate in ops/sec (ignored when
	// Ramp is set).
	Rate float64 `json:"rate,omitempty"`
	// MaxInFlight bounds the open-loop in-flight pool (default 64). Ops
	// scheduled while the pool is saturated queue, and their queued time
	// counts against latency.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// Workers is the closed-loop pool size (default 1).
	Workers int `json:"workers,omitempty"`
	// Ramp replaces Rate with piecewise-constant stages (a flash-crowd
	// arrival spike is a low-high-low ramp). Open mode only.
	Ramp []RampStage `json:"ramp,omitempty"`
}

// RampStage is one piecewise-constant arrival-rate stage.
type RampStage struct {
	For  Duration `json:"for"`
	Rate float64  `json:"rate"`
}

// ItemSpec templates the items a stream inserts.
type ItemSpec struct {
	// IDTemplate names inserted items; "{stream}" expands to the stream
	// index and "{seq}" to the per-stream insert counter. Default
	// "{stream}-{seq}". Every template must contain {seq} so ids are
	// unique.
	IDTemplate string `json:"id_template,omitempty"`
	// WeightMin/WeightMax bound the uniform item-weight draw
	// (default [0, 1)).
	WeightMin float64 `json:"weight_min,omitempty"`
	WeightMax float64 `json:"weight_max,omitempty"`
}

// KeySpec sets which live item an update (or steady-churn delete) targets.
type KeySpec struct {
	// Dist is KeysUniform (default), KeysZipf, or KeysFlashCrowd.
	Dist string `json:"dist,omitempty"`
	// S is the Zipf exponent (> 1, default 1.2).
	S float64 `json:"s,omitempty"`
	// HotSet is the flash-crowd hot-set size (default 16).
	HotSet int `json:"hot_set,omitempty"`
}

// ChurnSpec sets how deletes choose their victim.
type ChurnSpec struct {
	// Pattern is ChurnSteady (default), ChurnDeleteRecent, or
	// ChurnSlidingWindow.
	Pattern string `json:"pattern,omitempty"`
	// Window is the sliding-window live-set size (required for
	// ChurnSlidingWindow).
	Window int `json:"window,omitempty"`
}

// QuerySpec parameterizes the stream's queries.
type QuerySpec struct {
	// K is the result size (default 10).
	K int `json:"k,omitempty"`
	// Algorithm and Scope pass through to the server (defaults "greedy",
	// "full").
	Algorithm string `json:"algorithm,omitempty"`
	Scope     string `json:"scope,omitempty"`
	// Lambdas, when non-empty, rotates a per-query λ override across
	// queries (stresses the server's query-time trade-off path).
	Lambdas []float64 `json:"lambdas,omitempty"`
}

// SpecError is a typed spec-validation failure carrying the JSON field path
// of the offending value, e.g. "streams[1].mix[2].weight".
type SpecError struct {
	Path string
	Msg  string
}

func (e *SpecError) Error() string {
	if e.Path == "" {
		return "scenario: spec: " + e.Msg
	}
	return "scenario: spec " + e.Path + ": " + e.Msg
}

func specErrf(path, format string, args ...any) *SpecError {
	return &SpecError{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// DecodeSpec parses and validates a JSON spec. Unknown fields and trailing
// data are rejected; validation failures are *SpecError values with field
// paths.
func DecodeSpec(r io.Reader) (*Spec, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxSpecBytes+1))
	if err != nil {
		return nil, fmt.Errorf("scenario: read spec: %w", err)
	}
	if len(data) > maxSpecBytes {
		return nil, fmt.Errorf("scenario: spec exceeds %d bytes", maxSpecBytes)
	}
	var spec Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("scenario: decode spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: decode spec: trailing data after JSON value")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// Encode writes the spec as indented canonical JSON — the form the shipped
// scenarios/ files are kept in, so decode→encode round-trips byte-exactly.
func (s *Spec) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Clone deep-copies the spec so callers can override duration, rates, or
// seeds without mutating a shared builtin.
func (s *Spec) Clone() *Spec {
	out := *s
	out.Streams = make([]StreamSpec, len(s.Streams))
	for i, st := range s.Streams {
		cp := st
		cp.Mix = append([]OpWeight(nil), st.Mix...)
		cp.Arrival.Ramp = append([]RampStage(nil), st.Arrival.Ramp...)
		cp.Query.Lambdas = append([]float64(nil), st.Query.Lambdas...)
		out.Streams[i] = cp
	}
	out.Invariants = append([]string(nil), s.Invariants...)
	return &out
}

// EffectiveInvariants is the checked set: the spec's list, or
// DefaultInvariants when it declares none.
func (s *Spec) EffectiveInvariants() []string {
	if len(s.Invariants) > 0 {
		return s.Invariants
	}
	return DefaultInvariants
}

func (s *Spec) hasInvariant(name string) bool {
	for _, inv := range s.EffectiveInvariants() {
		if inv == name {
			return true
		}
	}
	return false
}

// Validate checks the spec's structural invariants, returning a *SpecError
// with a field path on the first failure.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return specErrf("name", "required")
	}
	if s.Seed == 0 {
		return specErrf("seed", "required (non-zero, for reproducible replay)")
	}
	if s.Duration.Duration < 0 {
		return specErrf("duration", "negative (%v)", s.Duration.Duration)
	}
	if s.Dim <= 0 {
		return specErrf("dim", "%d, want > 0", s.Dim)
	}
	if s.SeedItems < 0 {
		return specErrf("seed_items", "%d, want ≥ 0", s.SeedItems)
	}
	if len(s.Streams) == 0 {
		return specErrf("streams", "at least one stream required")
	}
	for i, inv := range s.Invariants {
		switch inv {
		case InvResultSize, InvNoDuplicates, InvNoDeleted, InvMonotoneObjective:
		default:
			return specErrf(fmt.Sprintf("invariants[%d]", i), "unknown invariant %q", inv)
		}
	}
	names := make(map[string]bool, len(s.Streams))
	for i := range s.Streams {
		if err := s.validateStream(i); err != nil {
			return err
		}
		n := s.Streams[i].Name
		if names[n] {
			return specErrf(fmt.Sprintf("streams[%d].name", i), "duplicate stream name %q", n)
		}
		names[n] = true
	}
	if s.hasInvariant(InvMonotoneObjective) {
		if err := s.validateMonotone(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Spec) validateStream(i int) error {
	st := &s.Streams[i]
	path := func(f string) string { return fmt.Sprintf("streams[%d].%s", i, f) }
	if st.Name == "" {
		return specErrf(path("name"), "required")
	}
	if len(st.Mix) == 0 {
		return specErrf(path("mix"), "at least one op required")
	}
	total := 0
	for j, ow := range st.Mix {
		mp := fmt.Sprintf("streams[%d].mix[%d]", i, j)
		switch ow.Op {
		case OpInsert, OpUpdate, OpDelete, OpQuery:
		default:
			return specErrf(mp+".op", "unknown op %q (want insert, update, delete, or query)", ow.Op)
		}
		if ow.Weight < 0 {
			return specErrf(mp+".weight", "%d, want ≥ 0", ow.Weight)
		}
		total += ow.Weight
	}
	if total == 0 {
		return specErrf(path("mix"), "total weight 0")
	}
	if st.Ops < 0 {
		return specErrf(path("ops"), "%d, want ≥ 0", st.Ops)
	}
	// Every stream needs some bound: the spec duration, an op cap, or a
	// bounded arrival ramp (each ramp stage's duration is validated > 0).
	if st.Ops == 0 && s.Duration.Duration == 0 && len(st.Arrival.Ramp) == 0 {
		return specErrf(path("ops"), "stream needs an op cap when the spec has no duration and no ramp")
	}
	if st.MaxItems < 0 {
		return specErrf(path("max_items"), "%d, want ≥ 0", st.MaxItems)
	}

	a := &st.Arrival
	switch a.Mode {
	case ArrivalOpen:
		if len(a.Ramp) > 0 {
			if a.Rate != 0 {
				return specErrf(path("arrival.rate"), "rate and ramp are mutually exclusive")
			}
			for j, stg := range a.Ramp {
				rp := fmt.Sprintf("streams[%d].arrival.ramp[%d]", i, j)
				if stg.For.Duration <= 0 {
					return specErrf(rp+".for", "%v, want > 0", stg.For.Duration)
				}
				if stg.Rate <= 0 || math.IsNaN(stg.Rate) || math.IsInf(stg.Rate, 0) {
					return specErrf(rp+".rate", "%g, want finite > 0", stg.Rate)
				}
			}
		} else if a.Rate <= 0 || math.IsNaN(a.Rate) || math.IsInf(a.Rate, 0) {
			return specErrf(path("arrival.rate"), "%g, want finite > 0 (or a ramp)", a.Rate)
		}
		if a.MaxInFlight < 0 {
			return specErrf(path("arrival.max_in_flight"), "%d, want ≥ 0", a.MaxInFlight)
		}
		if a.Workers != 0 {
			return specErrf(path("arrival.workers"), "workers is a closed-loop field; open mode uses max_in_flight")
		}
	case ArrivalClosed:
		if a.Rate != 0 || len(a.Ramp) > 0 {
			return specErrf(path("arrival.rate"), "rate/ramp are open-loop fields")
		}
		if a.MaxInFlight != 0 {
			return specErrf(path("arrival.max_in_flight"), "max_in_flight is an open-loop field; closed mode uses workers")
		}
		if a.Workers < 0 {
			return specErrf(path("arrival.workers"), "%d, want ≥ 0", a.Workers)
		}
	default:
		return specErrf(path("arrival.mode"), "%q, want %q or %q", a.Mode, ArrivalOpen, ArrivalClosed)
	}

	if tpl := st.Items.IDTemplate; tpl != "" && !containsSeq(tpl) {
		return specErrf(path("items.id_template"), "%q lacks the {seq} placeholder (ids would collide)", tpl)
	}
	if st.Items.WeightMin < 0 || math.IsNaN(st.Items.WeightMin) {
		return specErrf(path("items.weight_min"), "%g, want ≥ 0", st.Items.WeightMin)
	}
	if st.Items.WeightMax != 0 && st.Items.WeightMax < st.Items.WeightMin {
		return specErrf(path("items.weight_max"), "%g < weight_min %g", st.Items.WeightMax, st.Items.WeightMin)
	}

	switch st.Keys.Dist {
	case "", KeysUniform:
	case KeysZipf:
		if st.Keys.S != 0 && st.Keys.S <= 1 {
			return specErrf(path("keys.s"), "%g, want > 1 (Zipf exponent)", st.Keys.S)
		}
	case KeysFlashCrowd:
		if st.Keys.HotSet < 0 {
			return specErrf(path("keys.hot_set"), "%d, want ≥ 0", st.Keys.HotSet)
		}
	default:
		return specErrf(path("keys.dist"), "%q, want %q, %q, or %q", st.Keys.Dist, KeysUniform, KeysZipf, KeysFlashCrowd)
	}

	switch st.Churn.Pattern {
	case "", ChurnSteady, ChurnDeleteRecent:
	case ChurnSlidingWindow:
		if st.Churn.Window <= 0 {
			return specErrf(path("churn.window"), "%d, want > 0 for %q", st.Churn.Window, ChurnSlidingWindow)
		}
	default:
		return specErrf(path("churn.pattern"), "%q, want %q, %q, or %q", st.Churn.Pattern, ChurnSteady, ChurnDeleteRecent, ChurnSlidingWindow)
	}

	if st.Query.K < 0 {
		return specErrf(path("query.k"), "%d, want ≥ 0", st.Query.K)
	}
	switch st.Query.Scope {
	case "", "full", "maintained":
	default:
		return specErrf(path("query.scope"), "%q, want full or maintained", st.Query.Scope)
	}
	for j, l := range st.Query.Lambdas {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return specErrf(fmt.Sprintf("streams[%d].query.lambdas[%d]", i, j), "%g, want finite ≥ 0", l)
		}
	}
	return nil
}

// validateMonotone enforces the preconditions under which a non-decreasing
// objective is actually a theorem: serialized insert-only exact queries
// over a capped corpus.
func (s *Spec) validateMonotone() error {
	if len(s.Streams) != 1 {
		return specErrf("invariants", "%s needs exactly one stream, have %d", InvMonotoneObjective, len(s.Streams))
	}
	st := &s.Streams[0]
	slots := st.Arrival.Workers
	if st.Arrival.Mode == ArrivalOpen {
		slots = st.Arrival.MaxInFlight
	}
	if slots > 1 {
		return specErrf("streams[0].arrival", "%s needs a serialized stream (1 worker / 1 in-flight slot)", InvMonotoneObjective)
	}
	for j, ow := range st.Mix {
		if (ow.Op == OpDelete || ow.Op == OpUpdate) && ow.Weight > 0 {
			return specErrf(fmt.Sprintf("streams[0].mix[%d]", j), "%s forbids %s ops", InvMonotoneObjective, ow.Op)
		}
	}
	if st.Query.Algorithm != "exact" {
		return specErrf("streams[0].query.algorithm", "%s requires %q (only the exact optimum is monotone under inserts)", InvMonotoneObjective, "exact")
	}
	if st.MaxItems <= 0 {
		return specErrf("streams[0].max_items", "%s requires a cap (the exact solver has a corpus limit)", InvMonotoneObjective)
	}
	if s.SeedItems > 0 {
		return specErrf("seed_items", "%s requires an empty starting corpus", InvMonotoneObjective)
	}
	return nil
}

func containsSeq(tpl string) bool {
	return bytes.Contains([]byte(tpl), []byte("{seq}"))
}
