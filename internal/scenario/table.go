package scenario

import (
	"fmt"
	"math/rand"
)

// Weighted pairs an item with its relative selection weight.
type Weighted[T any] struct {
	Item   T
	Weight int
}

// Table draws items with probability proportional to their weights — the
// op-mix primitive every scenario stream is built on. Selection walks the
// cumulative weights, so a draw costs O(len) with no precomputed alias
// structures; op tables have a handful of entries and the draw is never on
// a latency-measured path (ops are generated before they are timed).
type Table[T any] struct {
	items []Weighted[T]
	total int
}

// NewTable validates the weights and precomputes the total. Zero-weight
// entries are legal (they are simply never drawn — convenient when a spec
// zeroes out one op of a standard mix); negative weights and an all-zero
// table are errors.
func NewTable[T any](items ...Weighted[T]) (*Table[T], error) {
	total := 0
	for i, it := range items {
		if it.Weight < 0 {
			return nil, fmt.Errorf("scenario: table entry %d has negative weight %d", i, it.Weight)
		}
		total += it.Weight
	}
	if total == 0 {
		return nil, fmt.Errorf("scenario: table has zero total weight over %d entries", len(items))
	}
	return &Table[T]{items: items, total: total}, nil
}

// Pick draws one item using rng. The draw lands in [0, total); entry i owns
// the half-open interval [cum(i-1), cum(i)), so a zero-weight entry owns an
// empty interval and can never be selected.
func (t *Table[T]) Pick(rng *rand.Rand) T {
	roll := rng.Intn(t.total)
	cum := 0
	for i := range t.items {
		cum += t.items[i].Weight
		if roll < cum {
			return t.items[i].Item
		}
	}
	// Unreachable: roll < total = cum after the last entry.
	return t.items[len(t.items)-1].Item
}

// Total reports the summed weight (the denominator of each entry's
// selection probability).
func (t *Table[T]) Total() int { return t.total }
