// Package scenario is the declarative workload engine behind cmd/loadgen
// and the scenario bench probes: a scenario is a JSON spec — streams of
// weighted ops over templated items, key-popularity distributions, churn
// patterns, and an arrival model — executed against a Target with inline
// invariant checking.
//
// # Open-loop execution
//
// The load model is the spec's central choice. Closed-loop streams run a
// fixed worker pool back to back, which is how most load generators work
// and how they lie: when the target stalls, the workers stall with it, the
// offered load silently drops, and the stall never shows up in the
// latency percentiles (coordinated omission). Open-loop streams instead
// schedule op arrival times from a target rate and measure every op's
// latency from its scheduled arrival — an op that spends 900ms queued
// behind a saturated in-flight pool and 1ms executing reports 901ms. The
// open_vs_closed bench probe records the gap on an identical mix.
//
// # Determinism
//
// Every generated op — kind, item payload, delete target, query
// parameters, scheduled arrival — is a pure function of (spec, seed);
// execution timing never feeds back into generation. A failing scenario
// run therefore replays exactly: same spec, same seed, same op sequence,
// byte-identical item vectors. Correctness under concurrent execution is
// preserved by a per-op dependency barrier (a delete waits for its item's
// last write to complete) rather than by execution-time target selection.
//
// # Invariants
//
// Specs declare the invariants checked while the workload runs:
// result_size (every query returns min(k, n) items), no_duplicates,
// no_deleted (an acknowledged delete never resurfaces), and
// monotone_objective (exact-solver objective non-decreasing under a
// serialized insert-only stream). Violations fail CI smoke runs and bench
// probes outright.
//
// # Results
//
// RunResult carries per-kind and per-stream latency summaries; cmd/loadgen
// renders them and internal/bench converts them into maxsumdiv-bench
// schema results, which is how scenarios join the committed-baseline
// regression gate.
package scenario
