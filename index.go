package maxsumdiv

import (
	"fmt"
	"strconv"

	"maxsumdiv/internal/core"
	"maxsumdiv/internal/engine"
	"maxsumdiv/internal/matroid"
	"maxsumdiv/internal/metric"
	"maxsumdiv/internal/setfunc"
)

// Index is a reusable, concurrency-safe max-sum diversification corpus: the
// immutable item list plus the materialized (or lazily memoized) distance
// backend, a cached scan-worker pool, and a shared solver-scratch cache.
// Build it once with NewIndex — the construction pays the O(n²) backend
// cost — then answer any number of queries against it with Query: λ, the
// quality function, the algorithm, and the constraint are all query-time
// parameters, so one Index serves every trade-off without rebuilding
// anything.
//
// An Index is safe for concurrent use: queries only read the backend, and
// the scratch cache hands each in-flight solve its own state. This is the
// amortization the dynamic-submodular literature prescribes — pay for
// structure once, reuse it across the query stream — applied to the serving
// path.
type Index struct {
	items   []Item
	dist    metric.Metric
	vecs    [][]float64      // item vectors when every item has one (candidate gen)
	quality setfunc.Source   // index-default quality (modular unless WithQuality)
	modular *setfunc.Modular // non-nil when the default quality is modular
	lambda  float64          // index-default trade-off
	pool    *engine.Pool     // cached scan workers for queries
	scratch *core.StateCache // solver scratch shared across query objectives

	// defaultObj evaluates with the index defaults; the deprecated Problem
	// wrappers and the read accessors (Objective, Distance) go through it.
	defaultObj *core.Objective
}

// NewIndex validates the items and options and builds the reusable index.
// It accepts the same options as NewProblem: distance selection
// (WithCosineDistance, WithDistanceMatrix, …), backend choice
// (WithFloat32, WithLazyDistances), the default trade-off (WithLambda) and
// default quality (WithQuality), plus WithDefaultParallelism for the cached
// query pool.
func NewIndex(items []Item, opts ...Option) (*Index, error) {
	if len(items) == 0 {
		return nil, ErrNoItems
	}
	cfg := problemCfg{lambda: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.lazy && cfg.float32 {
		return nil, fmt.Errorf("%w: pick one backend", ErrBackendConflict)
	}

	dist, err := buildMetric(items, &cfg)
	if err != nil {
		return nil, err
	}
	if cfg.validate {
		if err := metric.Validate(dist, 1e-9); err != nil {
			return nil, fmt.Errorf("maxsumdiv: %w", err)
		}
	}

	var f setfunc.Source
	var modular *setfunc.Modular
	if cfg.quality != nil {
		f = adaptQuality(cfg.quality, len(items))
		if v := f.Value(nil); v != 0 {
			return nil, fmt.Errorf("%w: f(∅) = %g", ErrQualityNotNormalized, v)
		}
	} else {
		weights := make([]float64, len(items))
		for i, it := range items {
			weights[i] = it.Weight
		}
		mod, err := setfunc.NewModular(weights)
		if err != nil {
			return nil, fmt.Errorf("maxsumdiv: %w", err)
		}
		f = mod
		modular = mod
	}

	scratch := core.NewStateCache()
	obj, err := core.NewObjectiveCached(f, cfg.lambda, dist, scratch)
	if err != nil {
		return nil, wrapLambdaErr(err)
	}
	cp := make([]Item, len(items))
	copy(cp, items)
	vecs := make([][]float64, len(cp))
	for i := range cp {
		if len(cp[i].Vector) == 0 {
			vecs = nil
			break
		}
		vecs[i] = cp[i].Vector
	}
	return &Index{
		items:      cp,
		dist:       dist,
		vecs:       vecs,
		quality:    f,
		modular:    modular,
		lambda:     cfg.lambda,
		pool:       engine.New(cfg.parallelism),
		scratch:    scratch,
		defaultObj: obj,
	}, nil
}

// NewVectorIndex builds an Index directly from feature vectors and modular
// quality weights — the vector-native entry point for corpora too large to
// materialize pairwise distances. Item IDs are the decimal indices
// ("0", "1", …); weights may be nil (all zero: pure diversification) or one
// per vector. The backend defaults to the compute-on-demand float32 vector
// store (WithVectorBackendF32, O(n·d) resident bytes); pass
// WithVectorBackendInt8 to quantize, or any NewIndex option to override
// defaults. Pair with Query.Candidates = CandidatesPreFiltered to keep
// per-query scans sublinear in n.
func NewVectorIndex(vectors [][]float64, weights []float64, opts ...Option) (*Index, error) {
	if len(vectors) == 0 {
		return nil, ErrNoItems
	}
	if weights != nil && len(weights) != len(vectors) {
		return nil, fmt.Errorf("maxsumdiv: %d weights for %d vectors", len(weights), len(vectors))
	}
	items := make([]Item, len(vectors))
	for i, v := range vectors {
		var w float64
		if weights != nil {
			w = weights[i]
		}
		items[i] = Item{ID: strconv.Itoa(i), Weight: w, Vector: v}
	}
	return NewIndex(items, append([]Option{WithVectorBackendF32()}, opts...)...)
}

// wrapLambdaErr translates core's lambda validation failure into the public
// sentinel (the only objective-construction error reachable once items and
// quality have been validated).
func wrapLambdaErr(err error) error {
	return fmt.Errorf("%w: %v", ErrInvalidLambda, err)
}

// adaptQuality bridges a user SetFunction to the internal Source interface.
func adaptQuality(fn SetFunction, n int) setfunc.Source {
	return setfunc.AsSource(&adaptedQuality{fn: fn, n: n})
}

// Len returns the number of items.
func (ix *Index) Len() int { return len(ix.items) }

// Lambda returns the index-default trade-off (queries may override it).
func (ix *Index) Lambda() float64 { return ix.lambda }

// Items returns a copy of the item list.
func (ix *Index) Items() []Item {
	cp := make([]Item, len(ix.items))
	copy(cp, ix.items)
	return cp
}

// Distance returns the backend's distance between items i and j.
func (ix *Index) Distance(i, j int) float64 { return ix.dist.Distance(i, j) }

// Objective evaluates φ(S) for item indices S under the index defaults.
func (ix *Index) Objective(S []int) float64 { return ix.defaultObj.Value(S) }

// DistanceCacheStats reports the memoizing distance backend's counters when
// the index was built with WithLazyDistances and the striped cache is in
// play (ok = true): pairs stored, underlying distance evaluations, and total
// lookups. The cache hit rate is 1 − computed/lookups. For eagerly
// materialized indexes (including small WithLazyDistances instances, which
// Memoize promotes to a dense matrix) ok is false.
func (ix *Index) DistanceCacheStats() (stored int, computed, lookups int64, ok bool) {
	c, isCached := ix.dist.(*metric.Cached)
	if !isCached {
		return 0, 0, 0, false
	}
	stored, computed, lookups = c.Counters()
	return stored, computed, lookups, true
}

// BackendKind names the distance backend this index's queries actually run
// against: "dense-f64" (the default materialized float64 matrix),
// "dense-f32" (WithFloat32's blocked flat-row matrix), "lazy" (the
// WithLazyDistances memoizing cache), "vec-f32" / "vec-int8" (the
// compute-on-demand vector stores), or "custom" for anything else. Callers
// use it to verify a deployment choice took effect — e.g. that a large
// corpus really is on a vector backend before traffic hits it.
func (ix *Index) BackendKind() string {
	switch d := ix.dist.(type) {
	case *metric.Dense:
		return "dense-f64"
	case *metric.DenseF32:
		return "dense-f32"
	case *metric.Cached:
		return "lazy"
	case *metric.VecStore:
		return d.Kind()
	default:
		return "custom"
	}
}

// VectorRowCacheStats reports the vector backend's bounded solution-row
// cache counters when the index runs on WithVectorBackendF32/Int8
// (ok = true): row folds served from cache vs recomputed from vectors. The
// analogue of DistanceCacheStats for the compute-on-demand backends; for
// every other backend ok is false.
func (ix *Index) VectorRowCacheStats() (hits, misses int64, ok bool) {
	v, isVec := ix.dist.(*metric.VecStore)
	if !isVec {
		return 0, 0, false
	}
	hits, misses = v.RowCacheCounters()
	return hits, misses, true
}

// Cardinality returns the constraint |S| ≤ k (the uniform matroid).
func (ix *Index) Cardinality(k int) (Constraint, error) {
	u, err := matroid.NewUniform(ix.Len(), k)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrKOutOfRange, err)
	}
	return u, nil
}

// PartitionConstraint returns a partition matroid: partOf[i] assigns each
// item to a part; caps[j] bounds how many items part j contributes (e.g.
// "at most 2 stocks per sector").
func (ix *Index) PartitionConstraint(partOf []int, caps []int) (Constraint, error) {
	if len(partOf) != ix.Len() {
		return nil, fmt.Errorf("%w: partOf has %d entries for %d items", ErrConstraintMismatch, len(partOf), ix.Len())
	}
	m, err := matroid.NewPartition(partOf, caps)
	if err != nil {
		return nil, fmt.Errorf("maxsumdiv: %w", err)
	}
	return m, nil
}

// TransversalConstraint returns a transversal matroid: sets[j] lists the
// item indices belonging to collection C_j, and a selection is independent
// when it has a system of distinct representatives (Section 5's "every
// selected tuple represents a unique source").
func (ix *Index) TransversalConstraint(sets [][]int) (Constraint, error) {
	m, err := matroid.NewTransversal(ix.Len(), sets)
	if err != nil {
		return nil, fmt.Errorf("maxsumdiv: %w", err)
	}
	return m, nil
}

// TruncatedConstraint caps any constraint at cardinality k (matroid
// truncation; Section 5 notes the intersection with a uniform matroid is
// still a matroid).
func (ix *Index) TruncatedConstraint(c Constraint, k int) (Constraint, error) {
	if c == nil {
		return nil, ErrNilConstraint
	}
	m, err := matroid.NewTruncated(adaptConstraint(c), k)
	if err != nil {
		return nil, fmt.Errorf("maxsumdiv: %w", err)
	}
	return m, nil
}
