package maxsumdiv

import (
	"context"
	"fmt"
	"time"

	"maxsumdiv/internal/core"
	"maxsumdiv/internal/engine"
)

// Query parameterizes one solve against an Index. Everything the paper's
// objective φ(S) = f(S) + λ·Σ d(u,v) does not fix at corpus time is a
// query-time knob: the cardinality, the trade-off λ, the quality function,
// the algorithm, and the matroid constraint. The zero value selects k = 0
// (an empty selection) with the index defaults.
type Query struct {
	// K is how many items to select. Must lie in [0, Len()] unless ClampK
	// is set, which truncates oversized requests to the item count (the
	// serving-layer convention: k is client-supplied, n is whatever
	// survived the latest churn).
	K int
	// Lambda overrides the index's quality/diversity trade-off for this
	// query; nil keeps the index default. 0 is meaningful (pure quality) —
	// use Ptr(0.0).
	Lambda *float64
	// Algorithm selects the solver (default AlgorithmGreedy).
	Algorithm Algorithm
	// Quality replaces the index's quality function for this query. It
	// must be normalized (f(∅) = 0) and, for the guarantees, monotone
	// submodular; it must be safe for concurrent calls unless
	// Parallelism is 1. Algorithms that need the modular default
	// (AlgorithmGollapudiSharma) reject queries carrying one.
	Quality SetFunction
	// Constraint, when non-nil, replaces the |S| ≤ K cardinality
	// constraint with a matroid (build with Index.Cardinality,
	// PartitionConstraint, TransversalConstraint, TruncatedConstraint, or
	// any custom Constraint). Only AlgorithmLocalSearch (Theorem 2) and
	// AlgorithmExact honor general matroids.
	Constraint Constraint
	// Init seeds AlgorithmLocalSearch with an initial selection (e.g. a
	// previous query's Indices). Nil uses the default seeding: the greedy
	// solution under |S| ≤ K, or the Section 5 best-pair basis under a
	// Constraint.
	Init []int
	// MaxSwaps caps AlgorithmLocalSearch's applied swaps (0 = unlimited).
	MaxSwaps int
	// MinGain and RelEps are AlgorithmLocalSearch's improvement
	// thresholds: the minimum absolute gain per swap, and the paper's
	// ε-improvement rule requiring a (1+RelEps) factor.
	MinGain, RelEps float64
	// TimeBudget bounds AlgorithmLocalSearch's wall clock (0 = unlimited).
	// Prefer a context deadline: it also covers the greedy and exact
	// solvers.
	TimeBudget time.Duration
	// Parallelism overrides the scan-worker count for this query: 0 (the
	// default) reuses the index's cached pool, 1 forces a serial solve,
	// any other value selects that many workers (< 0 = GOMAXPROCS). The
	// scan-based solvers return the identical solution at every setting;
	// AlgorithmExact always returns an optimal set, but when the optimum
	// is not unique its parallel search may settle a tie differently than
	// the serial one.
	Parallelism int
	// ClampK treats K > Len() as K = Len() instead of ErrKOutOfRange.
	ClampK bool
}

// Ptr returns a pointer to v — a literal-friendly way to set the optional
// pointer fields of Query, e.g. Query{K: 10, Lambda: maxsumdiv.Ptr(0.5)}.
func Ptr[T any](v T) *T { return &v }

// Query solves one query against the index. The heavy structure — the
// distance backend, the worker pool, the solver scratch — is reused from
// the index, so a query's cost is the solver's scan work alone; nothing is
// rebuilt per call, and concurrent queries with different λ, k, quality, or
// algorithm are safe on one shared Index.
//
// ctx cancels the solve mid-scan: the engine polls it once per scan stride
// and Query returns ctx.Err() (context.Canceled or
// context.DeadlineExceeded, unwrapped). A ctx deadline is the intended
// guard for AlgorithmExact behind a serving path.
func (ix *Index) Query(ctx context.Context, q Query) (*Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spec := core.Spec{Ctx: ctx}

	switch q.Algorithm {
	case AlgorithmGreedy:
		spec.Algo = core.AlgoGreedy
	case AlgorithmGreedyImproved:
		spec.Algo = core.AlgoGreedyImproved
	case AlgorithmGollapudiSharma:
		spec.Algo = core.AlgoGollapudiSharma
	case AlgorithmOblivious:
		spec.Algo = core.AlgoOblivious
	case AlgorithmLocalSearch:
		spec.Algo = core.AlgoLocalSearch
	case AlgorithmExact:
		spec.Algo = core.AlgoExact
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownAlgorithm, q.Algorithm)
	}

	if q.Constraint != nil {
		if spec.Algo != core.AlgoLocalSearch && spec.Algo != core.AlgoExact {
			return nil, ErrConstraintAlgorithm
		}
		if q.Constraint.GroundSize() != ix.Len() {
			return nil, fmt.Errorf("%w: constraint covers %d, index has %d items",
				ErrConstraintMismatch, q.Constraint.GroundSize(), ix.Len())
		}
		spec.Constraint = adaptConstraint(q.Constraint)
	} else {
		k := q.K
		if q.ClampK && k > ix.Len() {
			k = ix.Len()
		}
		if k < 0 || k > ix.Len() {
			return nil, fmt.Errorf("%w: k = %d with %d items", ErrKOutOfRange, q.K, ix.Len())
		}
		spec.K = k
	}

	quality, modular := ix.quality, ix.modular
	if q.Quality != nil {
		quality = adaptQuality(q.Quality, ix.Len())
		if v := quality.Value(nil); v != 0 {
			return nil, fmt.Errorf("%w: f(∅) = %g", ErrQualityNotNormalized, v)
		}
		modular = nil
	}
	if spec.Algo.RequiresModular() && modular == nil {
		return nil, ErrNeedsModularQuality
	}

	lambda := ix.lambda
	if q.Lambda != nil {
		lambda = *q.Lambda
	}
	obj, err := core.NewObjectiveCached(quality, lambda, ix.dist, ix.scratch)
	if err != nil {
		return nil, wrapLambdaErr(err)
	}

	switch q.Parallelism {
	case 0:
		spec.Pool = ix.pool
	case 1:
		spec.Pool = nil // serial
	default:
		spec.Pool = engine.New(q.Parallelism)
	}
	spec.Init = q.Init
	spec.MaxSwaps = q.MaxSwaps
	spec.MinGain, spec.RelEps = q.MinGain, q.RelEps
	spec.TimeBudget = q.TimeBudget

	sol, err := core.Solve(obj, spec)
	if err != nil {
		return nil, err
	}
	return ix.wrap(sol), nil
}

// wrap converts a core solution into the public form, resolving item IDs.
func (ix *Index) wrap(sol *core.Solution) *Solution {
	ids := make([]string, len(sol.Members))
	for i, m := range sol.Members {
		ids[i] = ix.items[m].ID
	}
	return &Solution{
		Indices:    sol.Members,
		IDs:        ids,
		Value:      sol.Value,
		Quality:    sol.FValue,
		Dispersion: sol.Dispersion,
		Swaps:      sol.Swaps,
	}
}
