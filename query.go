package maxsumdiv

import (
	"context"
	"fmt"
	"sort"
	"time"

	"maxsumdiv/internal/candidate"
	"maxsumdiv/internal/core"
	"maxsumdiv/internal/engine"
	"maxsumdiv/internal/metric"
	"maxsumdiv/internal/setfunc"
)

// Query parameterizes one solve against an Index. Everything the paper's
// objective φ(S) = f(S) + λ·Σ d(u,v) does not fix at corpus time is a
// query-time knob: the cardinality, the trade-off λ, the quality function,
// the algorithm, and the matroid constraint. The zero value selects k = 0
// (an empty selection) with the index defaults.
type Query struct {
	// K is how many items to select. Must lie in [0, Len()] unless ClampK
	// is set, which truncates oversized requests to the item count (the
	// serving-layer convention: k is client-supplied, n is whatever
	// survived the latest churn).
	K int
	// Lambda overrides the index's quality/diversity trade-off for this
	// query; nil keeps the index default. 0 is meaningful (pure quality) —
	// use Ptr(0.0).
	Lambda *float64
	// Algorithm selects the solver (default AlgorithmGreedy).
	Algorithm Algorithm
	// Quality replaces the index's quality function for this query. It
	// must be normalized (f(∅) = 0) and, for the guarantees, monotone
	// submodular; it must be safe for concurrent calls unless
	// Parallelism is 1. Algorithms that need the modular default
	// (AlgorithmGollapudiSharma) reject queries carrying one.
	Quality SetFunction
	// Constraint, when non-nil, replaces the |S| ≤ K cardinality
	// constraint with a matroid (build with Index.Cardinality,
	// PartitionConstraint, TransversalConstraint, TruncatedConstraint, or
	// any custom Constraint). Only AlgorithmLocalSearch (Theorem 2) and
	// AlgorithmExact honor general matroids.
	Constraint Constraint
	// Init seeds AlgorithmLocalSearch with an initial selection (e.g. a
	// previous query's Indices). Nil uses the default seeding: the greedy
	// solution under |S| ≤ K, or the Section 5 best-pair basis under a
	// Constraint.
	Init []int
	// MaxSwaps caps AlgorithmLocalSearch's applied swaps (0 = unlimited).
	MaxSwaps int
	// MinGain and RelEps are AlgorithmLocalSearch's improvement
	// thresholds: the minimum absolute gain per swap, and the paper's
	// ε-improvement rule requiring a (1+RelEps) factor.
	MinGain, RelEps float64
	// TimeBudget bounds AlgorithmLocalSearch's wall clock (0 = unlimited).
	// Prefer a context deadline: it also covers the greedy and exact
	// solvers.
	TimeBudget time.Duration
	// Candidates selects the scan scope: CandidatesExact (the default)
	// considers every item; CandidatesPreFiltered first reduces the ground
	// set to a random-projection candidate subset (diverse directions plus
	// the globally heaviest items) and solves over it — O(candidates·k)
	// scan work instead of O(n·k), the mode that keeps per-query cost
	// sublinear on vector-backend corpora. Pre-filtered queries need item
	// vectors and the default modular quality, and reject matroid
	// constraints (ErrCandidateFilter); solutions index into the full item
	// list as usual.
	Candidates CandidateMode
	// CandidateTarget overrides the pre-filter's candidate count; 0 applies
	// the default heuristic max(512, 64·K) capped at Len(). Larger targets
	// trade scan time for accuracy; targets below K are raised to K.
	CandidateTarget int
	// Parallelism overrides the scan-worker count for this query: 0 (the
	// default) reuses the index's cached pool, 1 forces a serial solve,
	// any other value selects that many workers (< 0 = GOMAXPROCS). The
	// scan-based solvers return the identical solution at every setting;
	// AlgorithmExact always returns an optimal set, but when the optimum
	// is not unique its parallel search may settle a tie differently than
	// the serial one.
	Parallelism int
	// ClampK treats K > Len() as K = Len() instead of ErrKOutOfRange.
	ClampK bool
}

// CandidateMode selects how much of the ground set a query scans.
type CandidateMode int

const (
	// CandidatesExact scans every item — the default, and the only mode
	// that preserves the solvers' approximation guarantees exactly.
	CandidatesExact CandidateMode = iota
	// CandidatesPreFiltered scans a random-projection candidate subset;
	// see Query.Candidates.
	CandidatesPreFiltered
)

// Ptr returns a pointer to v — a literal-friendly way to set the optional
// pointer fields of Query, e.g. Query{K: 10, Lambda: maxsumdiv.Ptr(0.5)}.
func Ptr[T any](v T) *T { return &v }

// coreAlgo maps the public Algorithm to the solver's enum.
func coreAlgo(a Algorithm) (core.Algo, error) {
	switch a {
	case AlgorithmGreedy:
		return core.AlgoGreedy, nil
	case AlgorithmGreedyImproved:
		return core.AlgoGreedyImproved, nil
	case AlgorithmGollapudiSharma:
		return core.AlgoGollapudiSharma, nil
	case AlgorithmOblivious:
		return core.AlgoOblivious, nil
	case AlgorithmLocalSearch:
		return core.AlgoLocalSearch, nil
	case AlgorithmExact:
		return core.AlgoExact, nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrUnknownAlgorithm, a)
	}
}

// Query solves one query against the index. The heavy structure — the
// distance backend, the worker pool, the solver scratch — is reused from
// the index, so a query's cost is the solver's scan work alone; nothing is
// rebuilt per call, and concurrent queries with different λ, k, quality, or
// algorithm are safe on one shared Index.
//
// ctx cancels the solve mid-scan: the engine polls it once per scan stride
// and Query returns ctx.Err() (context.Canceled or
// context.DeadlineExceeded, unwrapped). A ctx deadline is the intended
// guard for AlgorithmExact behind a serving path.
func (ix *Index) Query(ctx context.Context, q Query) (*Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if q.Candidates == CandidatesPreFiltered {
		return ix.queryPreFiltered(ctx, q)
	}
	spec := core.Spec{Ctx: ctx}

	algo, err := coreAlgo(q.Algorithm)
	if err != nil {
		return nil, err
	}
	spec.Algo = algo

	if q.Constraint != nil {
		if spec.Algo != core.AlgoLocalSearch && spec.Algo != core.AlgoExact {
			return nil, ErrConstraintAlgorithm
		}
		if q.Constraint.GroundSize() != ix.Len() {
			return nil, fmt.Errorf("%w: constraint covers %d, index has %d items",
				ErrConstraintMismatch, q.Constraint.GroundSize(), ix.Len())
		}
		spec.Constraint = adaptConstraint(q.Constraint)
	} else {
		k := q.K
		if q.ClampK && k > ix.Len() {
			k = ix.Len()
		}
		if k < 0 || k > ix.Len() {
			return nil, fmt.Errorf("%w: k = %d with %d items", ErrKOutOfRange, q.K, ix.Len())
		}
		spec.K = k
	}

	quality, modular := ix.quality, ix.modular
	if q.Quality != nil {
		quality = adaptQuality(q.Quality, ix.Len())
		if v := quality.Value(nil); v != 0 {
			return nil, fmt.Errorf("%w: f(∅) = %g", ErrQualityNotNormalized, v)
		}
		modular = nil
	}
	if spec.Algo.RequiresModular() && modular == nil {
		return nil, ErrNeedsModularQuality
	}

	lambda := ix.lambda
	if q.Lambda != nil {
		lambda = *q.Lambda
	}
	obj, err := core.NewObjectiveCached(quality, lambda, ix.dist, ix.scratch)
	if err != nil {
		return nil, wrapLambdaErr(err)
	}

	switch q.Parallelism {
	case 0:
		spec.Pool = ix.pool
	case 1:
		spec.Pool = nil // serial
	default:
		spec.Pool = engine.New(q.Parallelism)
	}
	spec.Init = q.Init
	spec.MaxSwaps = q.MaxSwaps
	spec.MinGain, spec.RelEps = q.MinGain, q.RelEps
	spec.TimeBudget = q.TimeBudget

	sol, err := core.Solve(obj, spec)
	if err != nil {
		return nil, err
	}
	return ix.wrap(sol), nil
}

// queryPreFiltered solves a query over a random-projection candidate subset
// instead of the full ground set: candidate.Select picks
// max(512, 64·k)-ish indices (directionally spread, top weights always
// included), the solve runs on an index-remapped view of the backend and
// weights — no backend is built — and members map back to full-index
// positions, so the returned Solution is indistinguishable in shape from an
// exact-scan one. Query.Init members are unioned into the candidate set, so
// warm-starting local search from a previous solution never loses members
// to the filter.
func (ix *Index) queryPreFiltered(ctx context.Context, q Query) (*Solution, error) {
	algo, err := coreAlgo(q.Algorithm)
	if err != nil {
		return nil, err
	}
	if q.Constraint != nil {
		return nil, fmt.Errorf("%w: matroid constraints need the exact scan", ErrCandidateFilter)
	}
	if q.Quality != nil || ix.modular == nil {
		return nil, fmt.Errorf("%w: custom quality functions need the exact scan", ErrCandidateFilter)
	}
	if ix.vecs == nil {
		return nil, fmt.Errorf("%w: items carry no vectors", ErrCandidateFilter)
	}
	k := q.K
	if q.ClampK && k > ix.Len() {
		k = ix.Len()
	}
	if k < 0 || k > ix.Len() {
		return nil, fmt.Errorf("%w: k = %d with %d items", ErrKOutOfRange, q.K, ix.Len())
	}
	target := q.CandidateTarget
	if target > 0 && target < k {
		target = k
	}
	cands := candidate.Select(ix.vecs, ix.modular.Weights(), k, candidate.Params{Target: target})
	if len(q.Init) > 0 {
		// Union Init into the candidate set, preserving sorted order.
		have := make(map[int]bool, len(cands))
		for _, c := range cands {
			have[c] = true
		}
		extra := false
		for _, u := range q.Init {
			if u < 0 || u >= ix.Len() {
				return nil, fmt.Errorf("maxsumdiv: init member %d out of range [0,%d)", u, ix.Len())
			}
			if !have[u] {
				have[u] = true
				cands = append(cands, u)
				extra = true
			}
		}
		if extra {
			sort.Ints(cands)
		}
	}
	m := len(cands)
	subW := make([]float64, m)
	for i, idx := range cands {
		subW[i] = ix.modular.Weight(idx)
	}
	mod, err := setfunc.NewModular(subW)
	if err != nil {
		return nil, fmt.Errorf("maxsumdiv: %w", err)
	}
	view := metric.Func{N: m, F: func(i, j int) float64 {
		return ix.dist.Distance(cands[i], cands[j])
	}}
	lambda := ix.lambda
	if q.Lambda != nil {
		lambda = *q.Lambda
	}
	obj, err := core.NewObjective(mod, lambda, view)
	if err != nil {
		return nil, wrapLambdaErr(err)
	}
	spec := core.Spec{Algo: algo, K: k, Ctx: ctx}
	switch q.Parallelism {
	case 0:
		spec.Pool = ix.pool
	case 1:
		spec.Pool = nil
	default:
		spec.Pool = engine.New(q.Parallelism)
	}
	if len(q.Init) > 0 {
		posOf := make(map[int]int, m)
		for i, c := range cands {
			posOf[c] = i
		}
		init := make([]int, len(q.Init))
		for i, u := range q.Init {
			init[i] = posOf[u]
		}
		spec.Init = init
	}
	spec.MaxSwaps = q.MaxSwaps
	spec.MinGain, spec.RelEps = q.MinGain, q.RelEps
	spec.TimeBudget = q.TimeBudget

	sol, err := core.Solve(obj, spec)
	if err != nil {
		return nil, err
	}
	for i, mi := range sol.Members {
		sol.Members[i] = cands[mi]
	}
	return ix.wrap(sol), nil
}

// wrap converts a core solution into the public form, resolving item IDs.
func (ix *Index) wrap(sol *core.Solution) *Solution {
	ids := make([]string, len(sol.Members))
	for i, m := range sol.Members {
		ids[i] = ix.items[m].ID
	}
	return &Solution{
		Indices:    sol.Members,
		IDs:        ids,
		Value:      sol.Value,
		Quality:    sol.FValue,
		Dispersion: sol.Dispersion,
		Swaps:      sol.Swaps,
	}
}
